package experiments

import (
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/collective"
)

func TestFig6Mechanism(t *testing.T) {
	rows := RunFig6(0)
	if len(rows) != 3 {
		t.Fatalf("rows %d", len(rows))
	}
	byMode := map[cluster.VisibilityMode]Fig6Row{}
	for _, r := range rows {
		byMode[r.Mode] = r
	}
	all := byMode[cluster.VisibilityAll]
	pinned := byMode[cluster.VisibilityPinned]
	split := byMode[cluster.VisibilitySplit]

	if !all.Overflow {
		t.Fatal("all-visible must overflow with a near-capacity model (Fig. 6a)")
	}
	if !all.IPCForMPI {
		t.Fatal("all-visible keeps IPC")
	}
	if pinned.Overflow {
		t.Fatal("pinned must fit")
	}
	if pinned.IPCForMPI {
		t.Fatal("pinning must lose IPC — the paper's central problem")
	}
	if split.Overflow || !split.IPCForMPI {
		t.Fatalf("split must fit AND keep IPC (the paper's fix): %+v", split)
	}
	out := FormatFig6(rows)
	for _, want := range []string{"OOM", "LOST", "MV2_VISIBLE_DEVICES"} {
		if !strings.Contains(out, want) {
			t.Fatalf("format missing %q:\n%s", want, out)
		}
	}
}

func TestFig6SmallModelAllFit(t *testing.T) {
	rows := RunFig6(4 << 30)
	for _, r := range rows {
		if r.Overflow {
			t.Fatalf("small model should fit in every mode: %+v", r)
		}
	}
}

func TestFusionAblation(t *testing.T) {
	a := RunFusionAblation(collective.BackendMPIOpt, 1, 3)
	if len(a.Points) != 6 {
		t.Fatalf("points %d", len(a.Points))
	}
	// Smaller thresholds must produce more messages per step.
	if a.Points[0].Messages <= a.Points[len(a.Points)-1].Messages {
		t.Fatalf("2MB threshold should make more messages than 128MB: %v vs %v",
			a.Points[0].Messages, a.Points[len(a.Points)-1].Messages)
	}
	if a.Best().ImagesPerSec <= 0 {
		t.Fatal("best point empty")
	}
	if !strings.Contains(a.Format(), "fusion threshold") {
		t.Fatal("format broken")
	}
}

func TestCycleAblation(t *testing.T) {
	a := RunCycleAblation(collective.BackendMPIOpt, 1, 3)
	if len(a.Points) != 5 {
		t.Fatalf("points %d", len(a.Points))
	}
	for _, p := range a.Points {
		if p.ImagesPerSec <= 0 {
			t.Fatalf("bad point %+v", p)
		}
	}
}

func TestJitterAblation(t *testing.T) {
	a := RunJitterAblation(collective.BackendMPIOpt, 4, 3)
	if len(a.Points) != 4 {
		t.Fatalf("points %d", len(a.Points))
	}
	// High jitter must not be faster than low jitter (stragglers cost).
	lo, hi := a.Points[0], a.Points[len(a.Points)-1]
	if hi.ImagesPerSec > lo.ImagesPerSec*1.02 {
		t.Fatalf("6%% jitter (%g) should not beat 0.1%% (%g)", hi.ImagesPerSec, lo.ImagesPerSec)
	}
}
