package experiments

import (
	"strings"
	"testing"
)

func TestTuningLimit(t *testing.T) {
	r := RunTuningLimit(8, 3)
	if r.BestDefault.ImagesPerSec <= 0 || r.MPIOpt <= 0 {
		t.Fatalf("empty result %+v", r)
	}
	// The paper's claim: no Horovod-layer setting closes the gap.
	if r.GapPercent < 3 {
		t.Fatalf("gap %.1f%% too small — Horovod tuning should not reach MPI-Opt", r.GapPercent)
	}
	if r.GapPercent > 40 {
		t.Fatalf("gap %.1f%% implausibly large", r.GapPercent)
	}
	if !strings.Contains(r.Format(), "Horovod-layer") {
		t.Fatal("format broken")
	}
}

func TestModelSensitivity(t *testing.T) {
	rows := RunModelSensitivity(8, 3)
	if len(rows) != 2 {
		t.Fatalf("rows %d", len(rows))
	}
	big, small := rows[0], rows[1]
	if big.GradMB < 100 {
		t.Fatalf("paper config grads %f MB", big.GradMB)
	}
	if small.GradMB > 20 {
		t.Fatalf("baseline config grads %f MB", small.GradMB)
	}
	// The pathology must be much stronger for the large model.
	if big.GainPts <= small.GainPts+3 {
		t.Fatalf("large model gain %.1f pts should far exceed small model %.1f pts",
			big.GainPts, small.GainPts)
	}
	out := FormatModelSensitivity(rows)
	if !strings.Contains(out, "EDSR baseline") {
		t.Fatal("format broken")
	}
}
