package cluster

import (
	"fmt"

	"repro/internal/simnet"
)

// Path selects the physical route of a GPU-to-GPU transfer.
type Path int

// Transfer paths.
const (
	// PathIPC is a CUDA-IPC peer copy over NVLink (intra-node, fast).
	PathIPC Path = iota
	// PathHostStaged is a device→host→device staged pipeline (intra-node
	// fallback when IPC is unavailable).
	PathHostStaged
	// PathGDR is GPU-direct RDMA over InfiniBand (inter-node, fast).
	PathGDR
	// PathIBStaged is inter-node transfer staged through host memory
	// (when GDR/IPC designs are disabled — the paper's "MPI must default
	// to main memory for all GPU transfers").
	PathIBStaged
)

// String names the path.
func (p Path) String() string {
	switch p {
	case PathIPC:
		return "cuda-ipc"
	case PathHostStaged:
		return "host-staged"
	case PathGDR:
		return "gdr"
	case PathIBStaged:
		return "ib-staged"
	default:
		return fmt.Sprintf("path(%d)", int(p))
	}
}

// IntraDuration returns the modeled duration of an intra-node transfer of
// the given size along path (PathIPC or PathHostStaged).
func (c *Cluster) IntraDuration(bytes int64, path Path) float64 {
	switch path {
	case PathIPC:
		return c.Cfg.NVLinkLatency + float64(bytes)/c.Cfg.NVLinkBandwidth
	case PathHostStaged:
		return c.Cfg.HostStagedLatency + float64(bytes)/c.Cfg.HostStagedBandwidth
	default:
		panic("cluster: IntraDuration wants an intra-node path, got " + path.String())
	}
}

// InterDuration returns the modeled duration of one inter-node message of
// the given size along path (PathGDR or PathIBStaged), excluding
// registration.
func (c *Cluster) InterDuration(bytes int64, path Path) float64 {
	switch path {
	case PathGDR:
		return c.Cfg.IBLatency + float64(bytes)/c.Cfg.IBBandwidth
	case PathIBStaged:
		return c.Cfg.IBLatency + float64(bytes)/c.Cfg.IBStagedBandwidth
	default:
		panic("cluster: InterDuration wants an inter-node path, got " + path.String())
	}
}

// IntraTransfer performs an intra-node copy from gpu, occupying its copy
// port for the transfer's duration.
func (c *Cluster) IntraTransfer(p *simnet.Proc, from *GPU, bytes int64, path Path) {
	from.port.Use(p, c.IntraDuration(bytes, path))
}

// RegistrationTime returns the cost of registering a buffer of the given
// size with the HCA.
func (c *Cluster) RegistrationTime(bytes int64) float64 {
	return c.Cfg.RegistrationBaseSec + float64(bytes)*c.Cfg.RegistrationSecPerByte
}

// InterRing performs a leader's share of an inter-node ring collective:
// moving vol bytes through this node's NIC across the given number of
// pipelined ring steps. Registration of the communication buffer (regKey)
// is paid once, per the cache policy.
func (c *Cluster) InterRing(p *simnet.Proc, node int, vol int64, steps int, path Path, regKey uint64) {
	reg := c.registrationCost(node, vol, regKey)
	dur := reg + float64(steps)*c.Cfg.IBLatency + float64(vol)/c.interBandwidth(path)
	c.Node(node).NIC.Use(p, dur)
}

// InterRingEdge performs one rank's ring edge that crosses nodes (the NCCL
// flat-ring case): vol bytes through the NIC plus the ring's pipeline
// latency.
func (c *Cluster) InterRingEdge(p *simnet.Proc, node int, vol int64, pipelineLatency float64, path Path, regKey uint64) {
	reg := c.registrationCost(node, vol, regKey)
	dur := reg + pipelineLatency + float64(vol)/c.interBandwidth(path)
	c.Node(node).NIC.Use(p, dur)
}

func (c *Cluster) interBandwidth(path Path) float64 {
	if path == PathGDR {
		return c.Cfg.IBBandwidth
	}
	return c.Cfg.IBStagedBandwidth
}

// registrationCost returns the registration time owed for using a buffer,
// consulting the node's cache when one is installed.
func (c *Cluster) registrationCost(node int, bytes int64, regKey uint64) float64 {
	if rc := c.regCaches[node]; rc != nil {
		if rc.Lookup(regKey) {
			return 0
		}
	}
	return c.RegistrationTime(bytes)
}

// InterSend performs one inter-node message from a node's NIC. regKey
// identifies the communication buffer for the registration cache: with a
// cache installed, a repeated key skips registration (a hit); without a
// cache every send pays the registration cost — the contrast behind the
// paper's Fig. 11.
func (c *Cluster) InterSend(p *simnet.Proc, node int, bytes int64, path Path, regKey uint64) {
	reg := c.registrationCost(node, bytes, regKey)
	c.Node(node).NIC.Use(p, reg+c.InterDuration(bytes, path))
}
