// Package cluster models the Lassen supercomputer the paper measured on:
// nodes of four 16 GB Volta V100 GPUs joined by NVLink, IBM Power9 hosts,
// and an EDR InfiniBand fabric. It exposes the transfer paths whose
// availability the paper's optimization controls:
//
//   - CUDA IPC peer transfers over NVLink (fast intra-node path),
//   - host-staged copies through CPU memory (the fallback MPI is forced
//     into when CUDA_VISIBLE_DEVICES hides peer GPUs),
//   - GPU-direct RDMA over InfiniBand (inter-node), with or without the
//     registration cache.
//
// The visibility rules in visibility.go decide which path a transfer may
// take — that decision is the entire mechanism behind the paper's MPI vs
// MPI-Opt gap.
package cluster

import (
	"fmt"

	"repro/internal/simnet"
)

// Config holds the machine parameters. Bandwidths are effective (achieved
// by MPI-level transfers, not cable line rate); defaults are calibrated in
// internal/perfmodel against the paper's Table I and scaling figures.
type Config struct {
	Nodes       int
	GPUsPerNode int

	// GPUMemBytes bounds per-GPU allocations (V100: 16 GB).
	GPUMemBytes int64

	// NVLinkBandwidth is the effective CUDA-IPC peer-copy bandwidth per
	// GPU (bytes/sec).
	NVLinkBandwidth float64
	// NVLinkLatency is the per-transfer setup latency of an IPC copy.
	NVLinkLatency float64

	// HostStagedBandwidth is the effective bandwidth of a device→host→
	// device staged copy pipeline (the no-IPC fallback).
	HostStagedBandwidth float64
	// HostStagedLatency is the per-transfer setup cost of staging.
	HostStagedLatency float64

	// IBBandwidth is the effective per-NIC InfiniBand bandwidth with
	// GPU-direct RDMA working (bytes/sec).
	IBBandwidth float64
	// IBStagedBandwidth is the inter-node bandwidth when transfers must
	// stage through host memory (GDR unavailable — default MPI mode).
	IBStagedBandwidth float64
	// IBLatency is the per-message network latency.
	IBLatency float64

	// IPCMessageThreshold is the message size at which MVAPICH2-GDR's
	// large-message CUDA-IPC designs engage; below it the pipelined
	// staging path serves every configuration (hence Table I's ≈0
	// improvement under 16 MB).
	IPCMessageThreshold int64

	// RegistrationSecPerByte is the cost of registering (pinning) a buffer
	// with the InfiniBand HCA on a registration-cache miss.
	RegistrationSecPerByte float64
	// RegistrationBaseSec is the fixed per-registration cost.
	RegistrationBaseSec float64

	// CompressBandwidth is the effective on-GPU throughput of gradient
	// compression kernels — fp16 pack/unpack passes and top-k selection —
	// in bytes of input processed per second. Elementwise kernels on a
	// V100 run far below HBM peak; 0 models compression as free.
	CompressBandwidth float64
}

// DefaultConfig returns the calibrated Lassen-like machine.
func DefaultConfig(nodes int) Config {
	return Config{
		Nodes:       nodes,
		GPUsPerNode: 4,
		GPUMemBytes: 16 << 30,

		// Effective large-message MPI bandwidths, calibrated so that a
		// 4-GPU hierarchical allreduce of EDSR's ~172 MB/step gradient
		// reproduces Table I: ~39 ms/step with IPC, ~72 ms/step staged.
		NVLinkBandwidth: 13.0e9,
		NVLinkLatency:   12e-6,

		HostStagedBandwidth: 6.1e9,
		HostStagedLatency:   40e-6,

		IBBandwidth:       1.6e9,
		IBStagedBandwidth: 1.05e9,
		IBLatency:         4e-6,

		IPCMessageThreshold: 16 << 20,

		RegistrationSecPerByte: 0.12e-9, // ~0.1 s/GB page pinning
		RegistrationBaseSec:    25e-6,

		CompressBandwidth: 250e9,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Nodes < 1 || c.GPUsPerNode < 1 {
		return fmt.Errorf("cluster: need at least one node and one GPU, got %d/%d", c.Nodes, c.GPUsPerNode)
	}
	if c.NVLinkBandwidth <= 0 || c.HostStagedBandwidth <= 0 || c.IBBandwidth <= 0 || c.IBStagedBandwidth <= 0 {
		return fmt.Errorf("cluster: bandwidths must be positive")
	}
	return nil
}

// GPU is one simulated device.
type GPU struct {
	Node      int
	Local     int // index within the node
	Global    int // global rank-order index
	allocated int64

	// port serializes this GPU's outbound copies (one copy engine).
	port *simnet.Resource
}

// Node is one host with its GPUs and NIC.
type Node struct {
	Index int
	GPUs  []*GPU
	// NIC serializes this node's InfiniBand sends.
	NIC *simnet.Resource
	// HostStage serializes staged copies through host memory.
	HostStage *simnet.Resource
}

// Cluster is the simulated machine.
type Cluster struct {
	Cfg   Config
	Sim   *simnet.Sim
	nodes []*Node
	gpus  []*GPU

	// RegCache is the per-node InfiniBand registration cache (nil when
	// the cache is disabled, the paper's default MPI and the historical
	// TensorFlow-conflict configuration).
	regCaches []*RegCache
}

// New builds a cluster on the given simulation.
func New(sim *simnet.Sim, cfg Config) *Cluster {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	c := &Cluster{Cfg: cfg, Sim: sim}
	for n := 0; n < cfg.Nodes; n++ {
		node := &Node{
			Index:     n,
			NIC:       sim.NewResource(fmt.Sprintf("node%d.nic", n), 1),
			HostStage: sim.NewResource(fmt.Sprintf("node%d.host", n), 1),
		}
		for g := 0; g < cfg.GPUsPerNode; g++ {
			gpu := &GPU{
				Node:   n,
				Local:  g,
				Global: n*cfg.GPUsPerNode + g,
				port:   sim.NewResource(fmt.Sprintf("node%d.gpu%d.port", n, g), 1),
			}
			node.GPUs = append(node.GPUs, gpu)
			c.gpus = append(c.gpus, gpu)
		}
		c.nodes = append(c.nodes, node)
	}
	c.regCaches = make([]*RegCache, cfg.Nodes)
	return c
}

// NumGPUs returns the total device count.
func (c *Cluster) NumGPUs() int { return len(c.gpus) }

// GPU returns the device with the given global index.
func (c *Cluster) GPU(global int) *GPU {
	if global < 0 || global >= len(c.gpus) {
		panic(fmt.Sprintf("cluster: GPU %d out of range [0,%d)", global, len(c.gpus)))
	}
	return c.gpus[global]
}

// Node returns node n.
func (c *Cluster) Node(n int) *Node {
	if n < 0 || n >= len(c.nodes) {
		panic(fmt.Sprintf("cluster: node %d out of range [0,%d)", n, len(c.nodes)))
	}
	return c.nodes[n]
}

// EnableRegCache installs a registration cache with the given capacity
// (entries) on every node.
func (c *Cluster) EnableRegCache(entries int) {
	for n := range c.regCaches {
		c.regCaches[n] = NewRegCache(entries)
	}
}

// RegCacheStats aggregates hit/miss counters across nodes; zero values if
// the cache is disabled.
func (c *Cluster) RegCacheStats() (hits, misses int64) {
	for _, rc := range c.regCaches {
		if rc != nil {
			h, m := rc.Stats()
			hits += h
			misses += m
		}
	}
	return hits, misses
}

// Alloc reserves GPU memory, failing when the device is exhausted — the
// "overhead kernel" failure mode from the paper's Fig. 6.
func (g *GPU) Alloc(bytes int64, limit int64) error {
	if g.allocated+bytes > limit {
		return fmt.Errorf("cluster: GPU %d OOM: %d + %d > %d", g.Global, g.allocated, bytes, limit)
	}
	g.allocated += bytes
	return nil
}

// Free releases GPU memory.
func (g *GPU) Free(bytes int64) {
	g.allocated -= bytes
	if g.allocated < 0 {
		g.allocated = 0
	}
}

// Allocated returns the currently reserved bytes.
func (g *GPU) Allocated() int64 { return g.allocated }

// Port returns the GPU's copy-engine resource; transfers originating at
// this device serialize on it.
func (g *GPU) Port() *simnet.Resource { return g.port }
