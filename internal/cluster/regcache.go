package cluster

// RegCache models MVAPICH2's InfiniBand registration (pin-down) cache.
// Registering memory with the HCA is expensive — the kernel must pin the
// pages and the HCA must build address-translation entries — so MPI caches
// registrations keyed by buffer identity and reuses them when the same
// communication buffer appears again (Liu, Wu & Panda 2004, the paper's
// [22]). Horovod's fusion buffer is reused every cycle, making it an ideal
// cache client; the paper measured a 93% hit rate and ~5.1% throughput
// gain (Fig. 11).
//
// The cache is LRU with a bounded entry count, mirroring the pin-down
// cache's bounded pinned-page budget.
type RegCache struct {
	capacity int
	order    []uint64 // LRU order, most recent last
	entries  map[uint64]bool
	hits     int64
	misses   int64
}

// NewRegCache creates a cache holding up to capacity registrations.
func NewRegCache(capacity int) *RegCache {
	if capacity < 1 {
		capacity = 1
	}
	return &RegCache{capacity: capacity, entries: map[uint64]bool{}}
}

// Lookup records a use of buffer key and reports whether its registration
// was cached. On a miss the key is inserted (registered), evicting the
// least-recently-used entry if full.
func (rc *RegCache) Lookup(key uint64) bool {
	if rc.entries[key] {
		rc.hits++
		rc.touch(key)
		return true
	}
	rc.misses++
	if len(rc.order) >= rc.capacity {
		oldest := rc.order[0]
		rc.order = rc.order[1:]
		delete(rc.entries, oldest)
	}
	rc.entries[key] = true
	rc.order = append(rc.order, key)
	return false
}

func (rc *RegCache) touch(key uint64) {
	for i, k := range rc.order {
		if k == key {
			rc.order = append(rc.order[:i], rc.order[i+1:]...)
			rc.order = append(rc.order, key)
			return
		}
	}
}

// Stats returns cumulative hits and misses.
func (rc *RegCache) Stats() (hits, misses int64) { return rc.hits, rc.misses }

// HitRate returns hits/(hits+misses), or 0 with no lookups.
func (rc *RegCache) HitRate() float64 {
	total := rc.hits + rc.misses
	if total == 0 {
		return 0
	}
	return float64(rc.hits) / float64(total)
}

// Len returns the number of cached registrations.
func (rc *RegCache) Len() int { return len(rc.entries) }
