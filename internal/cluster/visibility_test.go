package cluster

import (
	"strings"
	"testing"
)

func TestMapProcessesModes(t *testing.T) {
	const g = 4
	all := MapProcesses(VisibilityAll, g)
	pinned := MapProcesses(VisibilityPinned, g)
	split := MapProcesses(VisibilitySplit, g)
	for r := 0; r < g; r++ {
		if len(all[r].FrameworkDevices) != g || len(all[r].MPIDevices) != g {
			t.Fatalf("all-visible rank %d: %+v", r, all[r])
		}
		if len(pinned[r].FrameworkDevices) != 1 || pinned[r].FrameworkDevices[0] != r {
			t.Fatalf("pinned rank %d framework: %+v", r, pinned[r])
		}
		if len(pinned[r].MPIDevices) != 1 {
			t.Fatalf("pinned rank %d should restrict MPI too", r)
		}
		if len(split[r].FrameworkDevices) != 1 || split[r].FrameworkDevices[0] != r {
			t.Fatalf("split rank %d framework: %+v", r, split[r])
		}
		if len(split[r].MPIDevices) != g {
			t.Fatalf("split rank %d MPI should see all devices", r)
		}
	}
}

// TestIPCAvailability encodes the paper's central observation (Section
// III-C): pinning CUDA_VISIBLE_DEVICES kills CUDA IPC for MPI, while the
// proposed MV2_VISIBLE_DEVICES split restores it.
func TestIPCAvailability(t *testing.T) {
	pinned := MapProcesses(VisibilityPinned, 4)
	split := MapProcesses(VisibilitySplit, 4)
	all := MapProcesses(VisibilityAll, 4)
	if pinned[0].IPCAvailable(0, 1) {
		t.Fatal("pinned mode must not allow IPC between GPU 0 and 1")
	}
	if !split[0].IPCAvailable(0, 1) {
		t.Fatal("MV2_VISIBLE_DEVICES split must allow IPC")
	}
	if !all[0].IPCAvailable(0, 3) {
		t.Fatal("all-visible must allow IPC")
	}
	// Self-IPC (same device) is trivially available whenever visible.
	if !pinned[2].IPCAvailable(2, 2) {
		t.Fatal("own device should be IPC-visible")
	}
}

// TestFrameworkFootprint reproduces the paper's Fig. 6a failure mode: with
// everything visible, each process drops overhead kernels on every GPU and
// the devices overflow; pinning (or the split) contains the footprint.
func TestFrameworkFootprint(t *testing.T) {
	modelBytes := int64(12 << 30) // a large training job

	newNode := func() *Node {
		_, cl := testCluster(1)
		return cl.Node(0)
	}

	// All-visible: 4 processes × 500 MB on each of 4 GPUs = 2 GB overhead
	// per GPU + 12 GB model → 14 GB < 16 GB... but the model process also
	// puts overhead on its own GPU, totalling 12 GB + 4×500 MB = 14 GB,
	// fine — so push the model to 14.5 GB to show the restriction of the
	// hyperparameter space.
	bigModel := int64(14)<<30 + (500 << 20)
	if err := FrameworkFootprint(newNode(), MapProcesses(VisibilityAll, 4), bigModel, 16<<30); err == nil {
		t.Fatal("all-visible mode should overflow with a near-capacity model")
	} else if !strings.Contains(err.Error(), "overflows") {
		t.Fatalf("unexpected error: %v", err)
	}

	// Pinned: each GPU carries exactly one process's overhead + model.
	if err := FrameworkFootprint(newNode(), MapProcesses(VisibilityPinned, 4), bigModel, 16<<30); err != nil {
		t.Fatalf("pinned mode should fit: %v", err)
	}

	// Split keeps the framework footprint identical to pinned.
	if err := FrameworkFootprint(newNode(), MapProcesses(VisibilitySplit, 4), bigModel, 16<<30); err != nil {
		t.Fatalf("split mode should fit: %v", err)
	}

	// Moderate model: all modes fit.
	if err := FrameworkFootprint(newNode(), MapProcesses(VisibilityAll, 4), modelBytes, 16<<30); err != nil {
		t.Fatalf("moderate model should fit even all-visible: %v", err)
	}
}

func TestVisibilityModeString(t *testing.T) {
	for _, m := range []VisibilityMode{VisibilityAll, VisibilityPinned, VisibilitySplit, VisibilityMode(9)} {
		if m.String() == "" {
			t.Fatal("empty mode name")
		}
	}
}

func TestRegCacheLRU(t *testing.T) {
	rc := NewRegCache(2)
	if rc.Lookup(1) {
		t.Fatal("first lookup must miss")
	}
	if !rc.Lookup(1) {
		t.Fatal("second lookup must hit")
	}
	rc.Lookup(2)
	rc.Lookup(3) // evicts 1 (LRU)
	if rc.Lookup(1) {
		t.Fatal("evicted key must miss")
	}
	if rc.Len() != 2 {
		t.Fatalf("len %d", rc.Len())
	}
}

func TestRegCacheTouchKeepsHot(t *testing.T) {
	rc := NewRegCache(2)
	rc.Lookup(1)
	rc.Lookup(2)
	rc.Lookup(1) // touch 1 → 2 is now LRU
	rc.Lookup(3) // evicts 2
	if !rc.Lookup(1) {
		t.Fatal("recently-used key should survive")
	}
	if rc.Lookup(2) {
		t.Fatal("LRU key should have been evicted")
	}
}

func TestRegCacheHitRate(t *testing.T) {
	rc := NewRegCache(8)
	if rc.HitRate() != 0 {
		t.Fatal("empty cache hit rate should be 0")
	}
	rc.Lookup(1)
	for i := 0; i < 9; i++ {
		rc.Lookup(1)
	}
	if hr := rc.HitRate(); hr < 0.89 || hr > 0.91 {
		t.Fatalf("hit rate %g, want 0.9", hr)
	}
}

func TestRegCacheMinCapacity(t *testing.T) {
	rc := NewRegCache(0) // clamps to 1
	rc.Lookup(1)
	if !rc.Lookup(1) {
		t.Fatal("capacity-1 cache should still hit")
	}
}
