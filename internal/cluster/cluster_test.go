package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/simnet"
)

func testCluster(nodes int) (*simnet.Sim, *Cluster) {
	sim := simnet.New()
	return sim, New(sim, DefaultConfig(nodes))
}

func TestTopology(t *testing.T) {
	_, cl := testCluster(3)
	if cl.NumGPUs() != 12 {
		t.Fatalf("GPUs = %d", cl.NumGPUs())
	}
	g := cl.GPU(7)
	if g.Node != 1 || g.Local != 3 || g.Global != 7 {
		t.Fatalf("GPU 7 mapping: %+v", g)
	}
	if cl.Node(2).Index != 2 || len(cl.Node(2).GPUs) != 4 {
		t.Fatal("node 2 malformed")
	}
}

func TestConfigValidate(t *testing.T) {
	bad := DefaultConfig(0)
	if bad.Validate() == nil {
		t.Fatal("0 nodes should fail")
	}
	bad = DefaultConfig(1)
	bad.IBBandwidth = 0
	if bad.Validate() == nil {
		t.Fatal("zero bandwidth should fail")
	}
	if DefaultConfig(4).Validate() != nil {
		t.Fatal("default config should validate")
	}
}

func TestGPUOutOfRangePanics(t *testing.T) {
	_, cl := testCluster(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	cl.GPU(4)
}

func TestPathDurations(t *testing.T) {
	_, cl := testCluster(1)
	big := int64(64 << 20)
	ipc := cl.IntraDuration(big, PathIPC)
	staged := cl.IntraDuration(big, PathHostStaged)
	if staged <= ipc {
		t.Fatalf("staged (%g) must be slower than IPC (%g)", staged, ipc)
	}
	// The calibrated ratio behind Table I's ~50% large-bucket improvement.
	if ratio := staged / ipc; ratio < 1.7 || ratio > 3 {
		t.Fatalf("staged/IPC ratio %g outside the calibrated band", ratio)
	}
	gdr := cl.InterDuration(big, PathGDR)
	ibStaged := cl.InterDuration(big, PathIBStaged)
	if ibStaged <= gdr {
		t.Fatalf("IB staged (%g) must be slower than GDR (%g)", ibStaged, gdr)
	}
}

func TestPathDurationWrongKindPanics(t *testing.T) {
	_, cl := testCluster(1)
	for _, f := range []func(){
		func() { cl.IntraDuration(100, PathGDR) },
		func() { cl.InterDuration(100, PathIPC) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for wrong path kind")
				}
			}()
			f()
		}()
	}
}

// Property: durations are monotone in message size for every path.
func TestQuickDurationMonotone(t *testing.T) {
	_, cl := testCluster(1)
	f := func(a, b uint32) bool {
		x, y := int64(a), int64(b)
		if x > y {
			x, y = y, x
		}
		return cl.IntraDuration(x, PathIPC) <= cl.IntraDuration(y, PathIPC) &&
			cl.IntraDuration(x, PathHostStaged) <= cl.IntraDuration(y, PathHostStaged) &&
			cl.InterDuration(x, PathGDR) <= cl.InterDuration(y, PathGDR) &&
			cl.InterDuration(x, PathIBStaged) <= cl.InterDuration(y, PathIBStaged)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestIntraTransferOccupiesPort(t *testing.T) {
	sim, cl := testCluster(1)
	gpu := cl.GPU(0)
	var finish []simnet.Time
	for i := 0; i < 2; i++ {
		sim.Spawn("xfer", func(p *simnet.Proc) {
			cl.IntraTransfer(p, gpu, 13_000_000_000, PathIPC) // exactly 1 s at 13 GB/s
			finish = append(finish, p.Now())
		})
	}
	sim.RunAll()
	if len(finish) != 2 {
		t.Fatal("transfers did not run")
	}
	// Serialized on the port: second finishes ~2x later.
	if math.Abs(finish[1]-2*finish[0]) > 0.01 {
		t.Fatalf("port not serialized: %v", finish)
	}
}

func TestInterSendRegistrationWithoutCache(t *testing.T) {
	sim, cl := testCluster(2)
	bytes := int64(32 << 20)
	var first, second simnet.Time
	sim.Spawn("s", func(p *simnet.Proc) {
		cl.InterSend(p, 0, bytes, PathGDR, 42)
		first = p.Now()
		cl.InterSend(p, 0, bytes, PathGDR, 42)
		second = p.Now() - first
	})
	sim.RunAll()
	// Without a cache both sends pay registration: equal durations.
	if math.Abs(first-second) > 1e-9 {
		t.Fatalf("no-cache sends should cost the same: %g vs %g", first, second)
	}
	if first <= cl.InterDuration(bytes, PathGDR) {
		t.Fatal("registration cost missing")
	}
}

func TestInterSendRegistrationCacheHit(t *testing.T) {
	sim, cl := testCluster(2)
	cl.EnableRegCache(16)
	bytes := int64(32 << 20)
	var first, second simnet.Time
	sim.Spawn("s", func(p *simnet.Proc) {
		cl.InterSend(p, 0, bytes, PathGDR, 42)
		first = p.Now()
		cl.InterSend(p, 0, bytes, PathGDR, 42)
		second = p.Now() - first
	})
	sim.RunAll()
	if second >= first {
		t.Fatalf("cached send should be faster: first %g, second %g", first, second)
	}
	if math.Abs(second-cl.InterDuration(bytes, PathGDR)) > 1e-9 {
		t.Fatalf("cached send should cost pure transfer: %g", second)
	}
	hits, misses := cl.RegCacheStats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats: hits=%d misses=%d", hits, misses)
	}
}

func TestGPUMemoryAccounting(t *testing.T) {
	_, cl := testCluster(1)
	g := cl.GPU(0)
	if err := g.Alloc(10<<30, 16<<30); err != nil {
		t.Fatal(err)
	}
	if err := g.Alloc(10<<30, 16<<30); err == nil {
		t.Fatal("expected OOM")
	}
	g.Free(10 << 30)
	if g.Allocated() != 0 {
		t.Fatalf("allocated %d after free", g.Allocated())
	}
	g.Free(1) // over-free clamps
	if g.Allocated() != 0 {
		t.Fatal("over-free should clamp at zero")
	}
}

func TestPathString(t *testing.T) {
	for _, p := range []Path{PathIPC, PathHostStaged, PathGDR, PathIBStaged, Path(99)} {
		if p.String() == "" {
			t.Fatal("empty path name")
		}
	}
}
