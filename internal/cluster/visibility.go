package cluster

import "fmt"

// VisibilityMode models how the training processes map onto GPUs — the
// heart of the paper's Section III-C.
//
// Python DL frameworks allocate "overhead kernels" on every GPU they can
// see, so operators pin CUDA_VISIBLE_DEVICES to one device per process.
// But MPI inherits that restriction: with only one device visible, the
// CUDA IPC handshake (cuIpcGetMemHandle / cuIpcOpenMemHandle) cannot map a
// peer's buffer, and MPI falls back to staging every intra-node transfer
// through host memory. The paper's fix, MV2_VISIBLE_DEVICES, gives the
// MPI layer its own visibility set so the framework stays pinned while
// MPI keeps IPC.
type VisibilityMode int

// Visibility configurations from the paper's Figs. 6 and 7.
const (
	// VisibilityAll: nothing restricted. Frameworks spray overhead
	// kernels on all GPUs (Fig. 6a) but IPC works.
	VisibilityAll VisibilityMode = iota
	// VisibilityPinned: CUDA_VISIBLE_DEVICES = local rank (Fig. 6b).
	// Framework memory is contained but MPI loses CUDA IPC.
	VisibilityPinned
	// VisibilitySplit: CUDA_VISIBLE_DEVICES pins the framework while
	// MV2_VISIBLE_DEVICES exposes all local GPUs to MPI (Fig. 7) — the
	// paper's proposed configuration.
	VisibilitySplit
)

// String names the mode.
func (v VisibilityMode) String() string {
	switch v {
	case VisibilityAll:
		return "all-visible"
	case VisibilityPinned:
		return "cuda-visible-pinned"
	case VisibilitySplit:
		return "mv2-visible-split"
	default:
		return fmt.Sprintf("visibility(%d)", int(v))
	}
}

// ProcessMap describes one training process's device visibility.
type ProcessMap struct {
	// FrameworkDevices are the local GPU indices the DL framework can
	// allocate on.
	FrameworkDevices []int
	// MPIDevices are the local GPU indices the MPI layer can see for IPC.
	MPIDevices []int
}

// MapProcesses returns the per-local-rank visibility for a node with g
// GPUs under the given mode (one process per GPU, the standard mapping).
func MapProcesses(mode VisibilityMode, g int) []ProcessMap {
	all := make([]int, g)
	for i := range all {
		all[i] = i
	}
	maps := make([]ProcessMap, g)
	for r := 0; r < g; r++ {
		switch mode {
		case VisibilityAll:
			maps[r] = ProcessMap{FrameworkDevices: all, MPIDevices: all}
		case VisibilityPinned:
			maps[r] = ProcessMap{FrameworkDevices: []int{r}, MPIDevices: []int{r}}
		case VisibilitySplit:
			maps[r] = ProcessMap{FrameworkDevices: []int{r}, MPIDevices: all}
		}
	}
	return maps
}

// IPCAvailable reports whether the MPI layer can open an IPC handle
// between two local devices: both must be in the process's MPI visibility
// set (CUDA ≥ 10.1 semantics — the devices need not be visible to the
// *framework*, which is exactly what MV2_VISIBLE_DEVICES exploits).
func (pm ProcessMap) IPCAvailable(localSrc, localDst int) bool {
	return containsInt(pm.MPIDevices, localSrc) && containsInt(pm.MPIDevices, localDst)
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// OverheadKernelBytes is the per-process CUDA context + framework scratch
// footprint left on every visible device (the "OK" boxes in Fig. 6a).
// ~500 MB matches a CUDA context plus a typical framework arena.
const OverheadKernelBytes int64 = 500 << 20

// FrameworkFootprint applies each process's overhead-kernel allocations to
// the node's GPUs and returns an error if any device overflows — the
// "restricts the hyperparameter space" failure the paper describes. A
// process leaves OverheadKernelBytes on every framework-visible device;
// modelBytes lands only on its own primary device.
func FrameworkFootprint(node *Node, maps []ProcessMap, modelBytes int64, limit int64) error {
	for r, pm := range maps {
		for _, dev := range pm.FrameworkDevices {
			bytes := OverheadKernelBytes
			if dev == r {
				bytes += modelBytes
			}
			if err := node.GPUs[dev].Alloc(bytes, limit); err != nil {
				return fmt.Errorf("process %d overflows device %d: %w", r, dev, err)
			}
		}
	}
	return nil
}
