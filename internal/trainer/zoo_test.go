package trainer

import (
	"testing"

	"repro/internal/data"
	"repro/internal/tensor"
)

func zooTrain() Config {
	return Config{
		Data:      data.SyntheticConfig{Images: 8, Height: 24, Width: 24, Channels: 3, Seed: 3},
		Steps:     8,
		BatchSize: 2,
		PatchSize: 8,
		LR:        1e-3,
		Seed:      1,
	}
}

func TestParseArch(t *testing.T) {
	for _, s := range []string{"edsr", "SRCNN", "SRResNet"} {
		if _, err := ParseArch(s); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
	}
	if _, err := ParseArch("vdsr"); err == nil {
		t.Fatal("expected error for unknown arch")
	}
}

func TestTrainZooEDSR(t *testing.T) {
	res, err := TrainZoo(ZooConfig{
		Arch: ArchEDSR, Scale: 2, Blocks: 1, Feats: 6, Train: zooTrain(),
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Params == 0 || res.FinalLoss <= 0 || res.PSNR <= 0 {
		t.Fatalf("result %+v", res)
	}
}

func TestTrainZooSRCNN(t *testing.T) {
	res, err := TrainZoo(ZooConfig{
		Arch: ArchSRCNN, Scale: 2, Train: zooTrain(),
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// SRCNN's fixed architecture: 9-1-5 convs over 3 channels.
	want := (3*64*81 + 64) + (64*32 + 32) + (32*3*25 + 3)
	if res.Params != want {
		t.Fatalf("SRCNN params %d, want %d", res.Params, want)
	}
}

func TestTrainZooSRResNet(t *testing.T) {
	res, err := TrainZoo(ZooConfig{
		Arch: ArchSRResNet, Scale: 2, Blocks: 1, Feats: 8, Train: zooTrain(),
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.PSNR <= 0 {
		t.Fatalf("result %+v", res)
	}
}

func TestTrainZooValidation(t *testing.T) {
	if _, err := TrainZoo(ZooConfig{Arch: "nope", Scale: 2, Train: zooTrain()}, 0); err == nil {
		t.Fatal("unknown arch should fail")
	}
	if _, err := TrainZoo(ZooConfig{Arch: ArchSRResNet, Scale: 3, Blocks: 1, Feats: 8, Train: zooTrain()}, 0); err == nil {
		t.Fatal("SRResNet x3 should fail")
	}
	bad := zooTrain()
	bad.Steps = 0
	if _, err := TrainZoo(ZooConfig{Arch: ArchEDSR, Scale: 2, Blocks: 1, Feats: 4, Train: bad}, 0); err == nil {
		t.Fatal("zero steps should fail")
	}
	if _, err := TrainZoo(ZooConfig{Arch: ArchEDSR, Scale: 7, Blocks: 1, Feats: 4, Train: zooTrain()}, 0); err == nil {
		t.Fatal("bad scale should fail")
	}
}

func TestTrainZooFSRCNN(t *testing.T) {
	res, err := TrainZoo(ZooConfig{
		Arch: ArchFSRCNN, Scale: 2, Blocks: 2, Feats: 16, Train: zooTrain(),
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Params == 0 || res.PSNR <= 0 {
		t.Fatalf("result %+v", res)
	}
	if _, err := ParseArch("fsrcnn"); err != nil {
		t.Fatal(err)
	}
}

func TestEvaluateOnBenchmarks(t *testing.T) {
	cfg := ZooConfig{Arch: ArchEDSR, Scale: 2, Blocks: 1, Feats: 6, Train: zooTrain()}
	rngSeed := cfg.Train
	rngSeed.Steps = 12
	cfg.Train = rngSeed
	model, pre, err := cfg.Build(tensorRNG())
	if err != nil {
		t.Fatal(err)
	}
	scores := EvaluateOnBenchmarks(model, pre, 2, 32, 1)
	if len(scores) != 4 {
		t.Fatalf("scores %d", len(scores))
	}
	for _, s := range scores {
		if s.PSNR <= 0 || s.SSIM < -1 || s.SSIM > 1 || s.BicubicPSNR <= 0 {
			t.Fatalf("bad score %+v", s)
		}
	}
	// Bicubic must do better on the smooth set than on textures.
	byName := map[string]BenchmarkScore{}
	for _, s := range scores {
		byName[s.Set] = s
	}
	if byName["smooth5"].BicubicPSNR <= byName["textures8"].BicubicPSNR {
		t.Fatalf("bicubic should prefer smooth content: smooth %g vs textures %g",
			byName["smooth5"].BicubicPSNR, byName["textures8"].BicubicPSNR)
	}
	out := FormatBenchmarkScores("edsr-tiny", scores)
	if len(out) == 0 {
		t.Fatal("format broken")
	}
	// nil preprocessing defaults to identity.
	if got := EvaluateOnBenchmarks(model, nil, 2, 32, 1); len(got) != 4 {
		t.Fatal("nil pre should work")
	}
}

func tensorRNG() *tensor.RNG { return tensor.NewRNG(5) }
