package trainer

import (
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/models"
	"repro/internal/mpi"
)

// elasticTestConfig keeps the distributed fault tests laptop-fast.
func elasticTestConfig(steps int) Config {
	cfg := DefaultConfig()
	cfg.Model.NumBlocks, cfg.Model.NumFeats = 1, 4
	cfg.Data.Images = 16
	cfg.Steps = steps
	cfg.BatchSize = 2
	cfg.PatchSize = 8
	return cfg
}

func paramBits(t *testing.T, m *models.EDSR) [][]uint32 {
	t.Helper()
	var out [][]uint32
	for _, p := range m.Params() {
		d := p.Value.Data()
		bits := make([]uint32, len(d))
		for i, v := range d {
			bits[i] = math.Float32bits(v)
		}
		out = append(out, bits)
	}
	return out
}

func sameBits(a, b [][]uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// TestElasticResumeBitIdentical is the resume-equivalence gate: a 2-rank
// run checkpointed at step 10 and resumed to step 20 must produce
// parameters bit-identical to an uninterrupted 20-step run. Fusion is
// disabled so both runs reduce tensors in a fixed order (fusion grouping
// depends on submission timing and changes fp summation order).
func TestElasticResumeBitIdentical(t *testing.T) {
	dir := t.TempDir()

	ref := ElasticConfig{
		Train:                elasticTestConfig(20),
		WorldSize:            2,
		CheckpointPath:       filepath.Join(dir, "ref.gob"),
		CheckpointEvery:      10,
		FusionThresholdBytes: -1,
	}
	refModel, refStats, err := TrainElastic(ref)
	if err != nil {
		t.Fatal(err)
	}
	if refStats.Restarts != 0 || len(refStats.Attempts) != 1 {
		t.Fatalf("reference run restarted: %+v", refStats)
	}
	refBits := paramBits(t, refModel)

	// Interrupted run: train to step 10, stop, then resume to 20 from the
	// checkpoint file alone.
	half := ref
	half.Train.Steps = 10
	half.CheckpointPath = filepath.Join(dir, "half.gob")
	if _, _, err := TrainElastic(half); err != nil {
		t.Fatal(err)
	}
	step, ws, err := LoadElasticState(half.CheckpointPath)
	if err != nil {
		t.Fatal(err)
	}
	if step != 10 || ws != 2 {
		t.Fatalf("checkpoint at step %d world %d, want 10/2", step, ws)
	}
	resumed := half
	resumed.Train.Steps = 20
	resModel, resStats, err := TrainElastic(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if resStats.Attempts[0].StartStep != 10 || resStats.Attempts[0].EndStep != 20 {
		t.Fatalf("resume covered steps %d..%d, want 10..20", resStats.Attempts[0].StartStep, resStats.Attempts[0].EndStep)
	}
	if !sameBits(refBits, paramBits(t, resModel)) {
		t.Fatal("resumed run is not bit-identical to the uninterrupted run")
	}
}

// TestElasticCrashRestartsAndLossDecreases is the tentpole acceptance
// test: a 3-rank run where rank 1 is crashed at step 12 must neither
// hang nor panic — the survivors restart from the last checkpoint as a
// 2-rank world, re-shard the data, and the loss keeps decreasing.
func TestElasticCrashRestartsAndLossDecreases(t *testing.T) {
	dir := t.TempDir()
	cfg := ElasticConfig{
		Train:                elasticTestConfig(30),
		WorldSize:            3,
		CheckpointPath:       filepath.Join(dir, "elastic.gob"),
		CheckpointEvery:      5,
		RecvTimeout:          5 * time.Second,
		Fault:                mpi.FaultPlan{CrashRank: 1, CrashStep: 12, DropRank: -1, DelayRank: -1},
		MaxRestarts:          2,
		FusionThresholdBytes: -1,
	}
	model, stats, err := TrainElastic(cfg)
	if err != nil {
		t.Fatalf("elastic run did not recover: %v", err)
	}
	if model == nil {
		t.Fatal("no model returned")
	}
	if stats.Restarts != 1 || len(stats.Attempts) != 2 {
		t.Fatalf("want exactly one restart, got %+v", stats)
	}
	first, second := stats.Attempts[0], stats.Attempts[1]
	if first.WorldSize != 3 || second.WorldSize != 2 {
		t.Fatalf("world sizes %d -> %d, want 3 -> 2", first.WorldSize, second.WorldSize)
	}
	if first.Err == "" {
		t.Fatal("first attempt should report the injected fault")
	}
	// The crash hit at step 12, after the step-10 checkpoint.
	if second.StartStep != 10 {
		t.Fatalf("restarted from step %d, want 10", second.StartStep)
	}
	if second.EndStep != 30 {
		t.Fatalf("restart ended at step %d, want 30", second.EndStep)
	}
	// Convergence continues across the restart: the survivors' average
	// loss (steps 10..30) must undercut the first attempt's (steps 0..12,
	// which includes the untrained-model start).
	if !(second.AvgLoss < first.AvgLoss) {
		t.Fatalf("loss did not keep decreasing: %.5f -> %.5f", first.AvgLoss, second.AvgLoss)
	}
	if second.FinalLoss >= first.AvgLoss {
		t.Fatalf("final loss %.5f not below first attempt's average %.5f", second.FinalLoss, first.AvgLoss)
	}
}

// TestElasticShrunkResumeDeterministic: resuming one checkpoint into a
// smaller world twice must give bit-identical parameters — the re-shard
// draws fresh batches, but deterministically.
func TestElasticShrunkResumeDeterministic(t *testing.T) {
	dir := t.TempDir()
	seedCfg := ElasticConfig{
		Train:                elasticTestConfig(10),
		WorldSize:            3,
		CheckpointPath:       filepath.Join(dir, "seed.gob"),
		CheckpointEvery:      10,
		FusionThresholdBytes: -1,
	}
	if _, _, err := TrainElastic(seedCfg); err != nil {
		t.Fatal(err)
	}
	ck, err := os.ReadFile(seedCfg.CheckpointPath)
	if err != nil {
		t.Fatal(err)
	}

	var bits [][][]uint32
	for _, name := range []string{"a.gob", "b.gob"} {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, ck, 0o644); err != nil {
			t.Fatal(err)
		}
		cfg := seedCfg
		cfg.WorldSize = 2 // one rank gone
		cfg.CheckpointPath = path
		cfg.Train.Steps = 16
		model, stats, err := TrainElastic(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Attempts[0].StartStep != 10 || stats.Attempts[0].WorldSize != 2 {
			t.Fatalf("shrunk resume stats: %+v", stats.Attempts[0])
		}
		bits = append(bits, paramBits(t, model))
	}
	if !sameBits(bits[0], bits[1]) {
		t.Fatal("two resumes of the same checkpoint diverged")
	}
}
