package trainer

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestAtomicWritePartialFailureKeepsOldFile is the crash-safety gate:
// a writer that emits some bytes and then fails (a crash mid-save, a
// full disk) must leave the previous checkpoint bytes untouched and not
// litter temp files.
func TestAtomicWritePartialFailureKeepsOldFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.gob")
	good := []byte("the only good checkpoint")
	if err := os.WriteFile(path, good, 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("disk died mid-write")
	err := atomicWrite(path, func(w io.Writer) error {
		if _, err := w.Write([]byte("partial garbage")); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("write error not propagated: %v", err)
	}
	got, err2 := os.ReadFile(path)
	if err2 != nil {
		t.Fatal(err2)
	}
	if string(got) != string(good) {
		t.Fatalf("old checkpoint destroyed: %q", got)
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Fatalf("temp litter left behind: %v", entries)
	}
}

// TestAtomicWriteSuccessReplaces checks the happy path actually lands.
func TestAtomicWriteSuccessReplaces(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.gob")
	if err := os.WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := atomicWrite(path, func(w io.Writer) error {
		_, err := w.Write([]byte("new state"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "new state" {
		t.Fatalf("got %q", got)
	}
}

// TestAtomicWriteGobEncodeErrorPropagates: an unencodable value (gob
// cannot encode functions) must error out and keep the old file.
func TestAtomicWriteGobEncodeErrorPropagates(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.gob")
	if err := os.WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := atomicWriteGob(path, func() {}); err == nil {
		t.Fatal("expected encode error")
	}
	got, _ := os.ReadFile(path)
	if string(got) != "old" {
		t.Fatalf("old checkpoint destroyed: %q", got)
	}
}

// TestSessionSaveFailureKeepsResumableCheckpoint drives the property
// end-to-end through Session.Save: a good checkpoint, then a save into
// an unwritable directory, then a resume from the surviving file.
func TestSessionSaveFailureKeepsResumableCheckpoint(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sess.gob")
	cfg := DefaultConfig()
	cfg.Steps = 2
	cfg.Model.NumBlocks, cfg.Model.NumFeats = 1, 4
	sess, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.RunSteps(2); err != nil {
		t.Fatal(err)
	}
	if err := sess.Save(path); err != nil {
		t.Fatal(err)
	}
	goodBytes, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Make the directory unwritable so the temp file cannot be created;
	// the failed save must not touch the existing checkpoint.
	if err := os.Chmod(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(dir, 0o755)
	if os.Geteuid() == 0 {
		// Root ignores directory permissions; fall back to a path whose
		// parent directory does not exist at all.
		bad := filepath.Join(dir, "no-such-subdir", "sess.gob")
		if err := sess.Save(bad); err == nil {
			t.Fatal("expected save error")
		}
	} else if err := sess.Save(path); err == nil {
		t.Fatal("expected save error")
	}
	os.Chmod(dir, 0o755)

	afterBytes, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(afterBytes) != string(goodBytes) {
		t.Fatal("failed save modified the previous checkpoint")
	}
	resumed, err := ResumeSession(path)
	if err != nil {
		t.Fatalf("surviving checkpoint not resumable: %v", err)
	}
	if resumed.Step != 2 {
		t.Fatalf("resumed at step %d, want 2", resumed.Step)
	}
}

// TestSaveCheckpointAtomicReportsRenameTarget sanity-checks the model
// checkpoint path too: saving into a missing directory errors with a
// useful message and never creates a partial file elsewhere.
func TestSaveCheckpointAtomicMissingDir(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Model.NumBlocks, cfg.Model.NumFeats = 1, 4
	model, _, err := TrainSingle(withSteps(cfg, 1))
	if err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(t.TempDir(), "missing", "model.gob")
	err = SaveCheckpoint(bad, model, cfg)
	if err == nil {
		t.Fatal("expected error for missing directory")
	}
	if !strings.Contains(err.Error(), "checkpoint") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

func withSteps(cfg Config, n int) Config {
	cfg.Steps = n
	return cfg
}
