package trainer

import (
	"encoding/gob"
	"errors"
	"fmt"
	"math"
	"os"
	"strings"
	"time"

	"repro/internal/data"
	"repro/internal/horovod"
	"repro/internal/models"
	"repro/internal/mpi"
	"repro/internal/nn"
	"repro/internal/tensor"
	"repro/internal/trace"
)

// ElasticConfig drives a fault-tolerant data-parallel training run: the
// distributed generalization of Session. Rank 0 writes an atomic
// checkpoint of the full training state (parameters, Adam moments, the
// per-rank loader RNG streams) every CheckpointEvery steps; when a rank
// dies mid-run the surviving ranks rebuild a smaller world from the
// last checkpoint, re-shard the data, rescale the learning rate, and
// continue.
type ElasticConfig struct {
	// Train is the per-rank training configuration (model, data, steps,
	// base LR — scaled by the live world size, per the Horovod rule).
	Train Config
	// WorldSize is the initial number of data-parallel ranks.
	WorldSize int
	// CheckpointPath is where the training state lives. Empty disables
	// checkpointing (and therefore restart).
	CheckpointPath string
	// CheckpointEvery writes a checkpoint after every K steps (0 keeps
	// only the final state, written when the run completes).
	CheckpointEvery int
	// RecvTimeout is the failure-detection deadline: a rank silent for
	// this long is declared dead. 0 disables deadline detection (crashes
	// inside the process are still detected through panic recovery).
	RecvTimeout time.Duration
	// Fault is the injection schedule for the first attempt; restarts
	// always run fault-free. Zero value injects nothing (see
	// mpi.NoFaults; the rank -1 convention is normalized here).
	Fault mpi.FaultPlan
	// MaxRestarts bounds how many elastic restarts are attempted before
	// the run gives up and reports the failure.
	MaxRestarts int
	// FusionThresholdBytes is passed to the Horovod engine; -1 disables
	// fusion, which makes runs bitwise deterministic (fusion grouping
	// depends on readiness timing and changes fp summation order).
	FusionThresholdBytes int64
}

// AttemptStats describes one world's portion of an elastic run.
type AttemptStats struct {
	WorldSize int
	StartStep int
	EndStep   int
	AvgLoss   float64
	FinalLoss float64
	Err       string

	// survivors is the rank count available for the next restart.
	survivors int
}

// ElasticStats summarizes a completed elastic run.
type ElasticStats struct {
	Restarts int
	Attempts []AttemptStats
}

// elasticState is the serialized distributed training state. Values and
// moments are identical on every rank (that is the data-parallel
// invariant), so rank 0's copy plus every rank's loader RNG stream is
// the complete state of the job.
type elasticState struct {
	Config    Config
	WorldSize int
	Step      int
	Names     []string
	Values    []*tensor.Tensor
	AdamM     []*tensor.Tensor
	AdamV     []*tensor.Tensor
	AdamStep  int
	LoaderRNG []uint64
}

// LoadElasticState reads a distributed checkpoint (exported for the CLI
// to print resume info).
func LoadElasticState(path string) (step, worldSize int, err error) {
	st, err := readElasticState(path)
	if err != nil {
		return 0, 0, err
	}
	return st.Step, st.WorldSize, nil
}

func readElasticState(path string) (*elasticState, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var st elasticState
	if err := gob.NewDecoder(f).Decode(&st); err != nil {
		return nil, fmt.Errorf("trainer: corrupt elastic checkpoint %s: %w", path, err)
	}
	if st.WorldSize < 1 || st.Step < 0 || len(st.LoaderRNG) != st.WorldSize {
		return nil, fmt.Errorf("trainer: inconsistent elastic checkpoint %s (world %d, step %d, %d rng streams)",
			path, st.WorldSize, st.Step, len(st.LoaderRNG))
	}
	return &st, nil
}

// TrainElastic runs fault-tolerant data-parallel training. On a clean
// run it is TrainDistributed plus periodic checkpoints; when ranks die
// it restarts from the last checkpoint with the survivors, up to
// MaxRestarts times. If CheckpointPath already holds a checkpoint the
// run resumes from it — with the same world size the continuation is
// bit-identical to a run that never stopped.
func TrainElastic(cfg ElasticConfig) (*models.EDSR, ElasticStats, error) {
	var stats ElasticStats
	if cfg.WorldSize < 1 {
		return nil, stats, fmt.Errorf("trainer: elastic world size %d", cfg.WorldSize)
	}
	if cfg.Train.Steps < 1 || cfg.Train.BatchSize < 1 {
		return nil, stats, fmt.Errorf("trainer: invalid config: steps=%d batch=%d", cfg.Train.Steps, cfg.Train.BatchSize)
	}
	ws := cfg.WorldSize
	fault := normalizeFault(cfg.Fault)
	for {
		model, attempt, runErr := runElasticAttempt(cfg, ws, fault)
		stats.Attempts = append(stats.Attempts, attempt)
		if runErr == nil {
			return model, stats, nil
		}
		if cfg.CheckpointPath == "" {
			return nil, stats, fmt.Errorf("trainer: rank failure without a checkpoint to restart from: %w", runErr)
		}
		if stats.Restarts >= cfg.MaxRestarts {
			return nil, stats, fmt.Errorf("trainer: giving up after %d restart(s): %w", stats.Restarts, runErr)
		}
		survivors := attempt.survivors
		if survivors < 1 {
			return nil, stats, fmt.Errorf("trainer: no survivors to restart with: %w", runErr)
		}
		if cfg.Train.Log != nil {
			fmt.Fprintf(cfg.Train.Log, "elastic: %s; restarting with %d rank(s) from %s\n",
				firstLine(runErr.Error()), survivors, cfg.CheckpointPath)
		}
		// Mark the restart boundary on rank 0's timeline and in the live
		// metrics so a trace of a recovered run shows where the old world
		// ended and the shrunken one began.
		cfg.Train.Trace.Recorder(0).EmitInstant(trace.CatRestart, trace.TrackMain, 0)
		if tm := cfg.Train.Metrics; tm != nil {
			tm.Restarts.Inc()
			tm.FailedRanks.Add(int64(ws - survivors))
		}
		ws = survivors
		fault = mpi.NoFaults() // the injected fault fired; restarts run clean
		stats.Restarts++
	}
}

// firstLine trims a multi-rank errors.Join message to its root cause.
func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

func normalizeFault(p mpi.FaultPlan) mpi.FaultPlan {
	// The zero value of FaultPlan targets rank 0 everywhere; treat "all
	// zero" as "no faults" so callers need not know the -1 convention.
	if p == (mpi.FaultPlan{}) {
		return mpi.NoFaults()
	}
	return p
}

// runElasticAttempt executes one world until the configured step count
// or the first failure. It resumes from CheckpointPath when present.
func runElasticAttempt(cfg ElasticConfig, ws int, fault mpi.FaultPlan) (*models.EDSR, AttemptStats, error) {
	at := AttemptStats{WorldSize: ws, StartStep: 0}
	var st *elasticState
	if cfg.CheckpointPath != "" {
		if loaded, err := readElasticState(cfg.CheckpointPath); err == nil {
			st = loaded
			at.StartStep = st.Step
		} else if !errors.Is(err, os.ErrNotExist) {
			return nil, at, err
		}
	}
	if at.StartStep >= cfg.Train.Steps {
		// Nothing left to do; rebuild rank 0's model from the checkpoint.
		model := models.NewEDSR(cfg.Train.Model, tensor.NewRNG(cfg.Train.Seed))
		if err := restoreParams(model, st); err != nil {
			return nil, at, err
		}
		at.EndStep = at.StartStep
		return model, at, nil
	}

	world := mpi.NewWorld(ws)
	world.SetRecvTimeout(cfg.RecvTimeout)
	world.SetFaultPlan(fault)
	if cfg.Train.GPUsPerNode > 0 {
		world.SetGPUsPerNode(cfg.Train.GPUsPerNode)
	}

	outs := make([]rankProgress, ws)
	runErr := world.Run(func(c *mpi.Comm) {
		// The progress struct is updated in place every step so that a
		// failed attempt still reports how far it got and what the loss
		// looked like (a panic unwinds past any return value).
		elasticRankLoop(cfg, c, st, &outs[c.Rank()])
	})
	at.survivors = len(world.Survivors())
	o := outs[0]
	if o.steps > 0 {
		at.AvgLoss = o.lossSum / float64(o.steps)
		at.FinalLoss = o.last
	}
	at.EndStep = at.StartStep + o.steps
	if runErr != nil {
		at.Err = runErr.Error()
		return nil, at, runErr
	}
	if o.err != nil {
		at.Err = o.err.Error()
		return nil, at, o.err
	}
	for r := range outs {
		if outs[r].err != nil {
			at.Err = outs[r].err.Error()
			return nil, at, fmt.Errorf("rank %d: %w", r, outs[r].err)
		}
	}
	return o.model, at, nil
}

// rankProgress is one rank's incrementally-updated training state; it
// survives a mid-step panic so failed attempts still report stats.
type rankProgress struct {
	model   *models.EDSR
	lossSum float64
	steps   int
	last    float64
	err     error
}

// elasticRankLoop is one rank's fault-aware training loop: trainRank
// plus state restore, per-step fault points, and periodic distributed
// checkpoints.
func elasticRankLoop(cfg ElasticConfig, c *mpi.Comm, st *elasticState, out *rankProgress) {
	rank, ws := c.Rank(), c.Size()
	tcfg := cfg.Train
	rng := tensor.NewRNG(tcfg.Seed) // identical weights pre-broadcast
	model := models.NewEDSR(tcfg.Model, rng)
	out.model = model
	params := model.Params()
	if err := nn.CheckUniqueNames(params); err != nil {
		out.err = err
		return
	}

	ds := data.NewDataset(tcfg.Data)
	loader, err := data.NewLoader(ds, data.LoaderConfig{
		BatchSize: tcfg.BatchSize,
		PatchSize: tcfg.PatchSize,
		Scale:     tcfg.Model.Scale,
		Rank:      rank,
		WorldSize: ws,
		Seed:      loaderSeed(tcfg.Seed, st),
	})
	if err != nil {
		out.err = err
		return
	}

	opt := nn.NewAdam(params, tcfg.LR)
	start := 0
	if st != nil {
		if err := restoreParams(model, st); err != nil {
			out.err = err
			return
		}
		m, v, _ := opt.State()
		if len(st.AdamM) != len(m) || len(st.AdamV) != len(v) {
			out.err = fmt.Errorf("trainer: optimizer state size mismatch in checkpoint")
			return
		}
		for i := range m {
			m[i].CopyFrom(st.AdamM[i])
			v[i].CopyFrom(st.AdamV[i])
		}
		opt.SetStep(st.AdamStep)
		start = st.Step
		if st.WorldSize == ws {
			// Same world: resume each rank's exact sampling stream so the
			// continuation is bit-identical to a run that never stopped.
			loader.SetRNGState(st.LoaderRNG[rank])
		}
		// Shrunk world: the loader above was already built with the new
		// sharding and a seed mixed from the checkpoint step, so the
		// restarted run is deterministic (two restarts from the same
		// checkpoint draw identical batches) even though it cannot match
		// the dead world's stream.
	}

	fn, err := tcfg.newAllreduceFn()
	if err != nil {
		out.err = err
		return
	}
	fth := cfg.FusionThresholdBytes
	if tcfg.Compression == "topk" {
		// Top-k error feedback needs stable per-tensor buffers (see
		// Config.fusionThreshold); unfused also keeps runs deterministic.
		fth = 1
	}
	engine := horovod.NewEngine(engineComm(tcfg, c), horovod.Config{
		FusionThresholdBytes: fth,
		CycleTime:            0, // in-process ranks negotiate eagerly
		Average:              true,
		Algo:                 mpi.AlgoRing,
		AllreduceFn:          fn,
		Trace:                tcfg.Trace.Recorder(rank),
		Metrics:              rankMetrics(tcfg, rank),
	})
	dopt := horovod.NewDistributedOptimizer(opt, engine)
	model.SetGradHook(dopt.GradHook())
	engine.Start()
	defer engine.Shutdown()
	horovod.BroadcastParameters(c, params, 0)
	horovod.ScaleLR(opt, ws)
	schedule := nn.StepLRSchedule{Base: tcfg.LR * float64(ws), DecayEvery: tcfg.LRDecayEvery, Gamma: 0.5}

	rec := tcfg.Trace.Recorder(rank)
	tm := rankMetrics(tcfg, rank)
	if tm != nil {
		tm.WorldSize.Set(float64(ws))
	}
	loss := nn.L1Loss{}
	var gradBuf *tensor.Tensor
	for step := start; step < tcfg.Steps; step++ {
		c.FaultPoint(step)
		if tcfg.LRDecayEvery > 0 {
			schedule.Apply(opt, step)
		}
		batch := loader.Next()
		stepStart := time.Now()
		stepSpan := rec.Now()
		dopt.ZeroGrad()
		fwdSpan := rec.Now()
		pred := model.Forward(batch.LR)
		rec.Emit(trace.CatForward, trace.TrackMain, fwdSpan, 0)
		l, grad := loss.ForwardBuf(gradBuf, pred, batch.HR)
		gradBuf = grad
		bwdSpan := rec.Now()
		model.Backward(grad)
		rec.Emit(trace.CatBackward, trace.TrackMain, bwdSpan, 0)
		dopt.Step()
		rec.Emit(trace.CatStep, trace.TrackMain, stepSpan, 0)
		if tm != nil {
			tm.ObserveStep(tcfg.BatchSize*ws, time.Since(stepStart), 0)
		}
		out.lossSum += l
		out.last = l
		out.steps++
		if tcfg.LogEvery > 0 && tcfg.Log != nil && rank == 0 && (step+1)%tcfg.LogEvery == 0 {
			fmt.Fprintf(tcfg.Log, "step %4d  loss %.5f  world %d\n", step+1, l, ws)
		}
		if cfg.CheckpointPath != "" &&
			(step+1 == tcfg.Steps || (cfg.CheckpointEvery > 0 && (step+1)%cfg.CheckpointEvery == 0)) {
			ckSpan := rec.Now()
			if err := writeElasticCheckpoint(cfg, c, step+1, params, opt, loader); err != nil {
				out.err = err
				return
			}
			rec.Emit(trace.CatCheckpoint, trace.TrackMain, ckSpan, 0)
			if tm != nil {
				tm.Checkpoints.Inc()
			}
		}
	}
	// Merge spans on rank 0 while the world is still healthy; failed
	// attempts skip this (the trace keeps what rank 0 recorded locally).
	tcfg.Trace.Gather(c, 0)
}

// loaderSeed derives the loader's base seed. Fresh runs use the same
// derivation as trainRank; a run resumed into a *different* world size
// mixes in the checkpoint step so the re-sharded streams are fresh but
// deterministic.
func loaderSeed(seed uint64, st *elasticState) uint64 {
	s := seed + 100
	if st != nil {
		s += uint64(st.Step) * 7919
	}
	return s
}

// restoreParams copies checkpoint values into the model.
func restoreParams(model *models.EDSR, st *elasticState) error {
	if st == nil {
		return fmt.Errorf("trainer: nil elastic state")
	}
	params := model.Params()
	if len(params) != len(st.Names) {
		return fmt.Errorf("trainer: checkpoint has %d tensors, model %d", len(st.Names), len(params))
	}
	for i, p := range params {
		if p.Name != st.Names[i] {
			return fmt.Errorf("trainer: checkpoint tensor %q does not match %q", st.Names[i], p.Name)
		}
		if !p.Value.SameShape(st.Values[i]) {
			return fmt.Errorf("trainer: shape mismatch for %q", p.Name)
		}
		p.Value.CopyFrom(st.Values[i])
	}
	return nil
}

// writeElasticCheckpoint gathers every rank's loader RNG stream on rank
// 0 and writes the full training state atomically. All ranks call it at
// the same step; only rank 0 touches the filesystem. RNG states travel
// through the float32 substrate as raw bit halves — Send/Recv/Gather
// only copy, so the uint64 round-trips exactly.
func writeElasticCheckpoint(cfg ElasticConfig, c *mpi.Comm, step int, params []*nn.Param, opt *nn.Adam, loader *data.Loader) error {
	ws := c.Size()
	state := loader.RNGState()
	in := [2]float32{
		math.Float32frombits(uint32(state)),
		math.Float32frombits(uint32(state >> 32)),
	}
	var out []float32
	if c.Rank() == 0 {
		out = make([]float32, 2*ws)
	}
	c.Gather(in[:], out, 0)
	if c.Rank() != 0 {
		return nil
	}
	st := elasticState{
		Config:    cfg.Train.sanitized(),
		WorldSize: ws,
		Step:      step,
	}
	m, v, adamStep := opt.State()
	st.AdamM, st.AdamV, st.AdamStep = m, v, adamStep
	for _, p := range params {
		st.Names = append(st.Names, p.Name)
		st.Values = append(st.Values, p.Value)
	}
	st.LoaderRNG = make([]uint64, ws)
	for r := 0; r < ws; r++ {
		lo := uint64(math.Float32bits(out[2*r]))
		hi := uint64(math.Float32bits(out[2*r+1]))
		st.LoaderRNG[r] = hi<<32 | lo
	}
	return atomicWriteGob(cfg.CheckpointPath, &st)
}
