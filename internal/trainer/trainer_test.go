package trainer

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/models"
	"repro/internal/mpi"
	"repro/internal/tensor"
)

// fastConfig is a very small run for unit tests.
func fastConfig() Config {
	cfg := DefaultConfig()
	cfg.Model = models.EDSRConfig{NumBlocks: 1, NumFeats: 6, Scale: 2, ResScale: 0.1, Colors: 3}
	cfg.Data.Images = 8
	cfg.Data.Height, cfg.Data.Width = 24, 24
	cfg.Steps = 10
	cfg.BatchSize = 2
	cfg.PatchSize = 8
	return cfg
}

func TestTrainSingleReducesLoss(t *testing.T) {
	cfg := fastConfig()
	cfg.Steps = 40
	_, st, err := TrainSingle(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.FinalLoss >= st.AvgLoss*1.2 {
		t.Fatalf("loss not trending down: final %g avg %g", st.FinalLoss, st.AvgLoss)
	}
	if st.ImagesPerSec <= 0 || st.Steps != 40 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestTrainValidatesConfig(t *testing.T) {
	cfg := fastConfig()
	cfg.Steps = 0
	if _, _, err := TrainSingle(cfg); err == nil {
		t.Fatal("expected error for zero steps")
	}
	cfg = fastConfig()
	cfg.PatchSize = 1000
	if _, _, err := TrainSingle(cfg); err == nil {
		t.Fatal("expected error for oversized patch")
	}
	if _, _, err := TrainDistributed(fastConfig(), 0); err == nil {
		t.Fatal("expected error for world size 0")
	}
}

func TestTrainLogs(t *testing.T) {
	cfg := fastConfig()
	var buf bytes.Buffer
	cfg.Log = &buf
	cfg.LogEvery = 5
	if _, _, err := TrainSingle(cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "loss") {
		t.Fatalf("no progress lines: %q", buf.String())
	}
}

func TestLRSchedule(t *testing.T) {
	cfg := fastConfig()
	cfg.LRDecayEvery = 5
	cfg.Steps = 12
	if _, _, err := TrainSingle(cfg); err != nil {
		t.Fatal(err)
	}
}

// TestDistributedMatchesSingleThroughput verifies the distributed path
// runs and all ranks converge together; numerical equivalence to a full
// batch is covered in the horovod package tests.
func TestTrainDistributedRuns(t *testing.T) {
	cfg := fastConfig()
	cfg.Steps = 6
	m, st, err := TrainDistributed(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m == nil || st.Steps != 6 {
		t.Fatalf("stats %+v", st)
	}
	if math.IsNaN(st.FinalLoss) || st.FinalLoss <= 0 {
		t.Fatalf("bad loss %g", st.FinalLoss)
	}
}

func TestTrainDistributedWorldOneEqualsSingle(t *testing.T) {
	cfg := fastConfig()
	cfg.Steps = 4
	_, a, err := TrainDistributed(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, b, err := TrainSingle(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.FinalLoss-b.FinalLoss) > 1e-9 {
		t.Fatalf("world=1 should equal single: %g vs %g", a.FinalLoss, b.FinalLoss)
	}
}

// TestTrainedModelBeatsBicubic is the end-to-end super-resolution check:
// after enough real training steps the tiny EDSR must beat the classical
// bicubic baseline in PSNR on held-out synthetic images.
func TestTrainedModelBeatsBicubic(t *testing.T) {
	if testing.Short() {
		t.Skip("training run")
	}
	cfg := DefaultConfig()
	cfg.Steps = 150
	cfg.LR = 2e-3
	model, _, err := TrainSingle(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pm, pb := Evaluate(model, cfg, 4)
	if pm <= pb {
		t.Fatalf("trained EDSR PSNR %.2f dB did not beat bicubic %.2f dB", pm, pb)
	}
	t.Logf("PSNR: EDSR %.2f dB vs bicubic %.2f dB", pm, pb)
}

func TestCheckpointRoundTrip(t *testing.T) {
	cfg := fastConfig()
	model, _, err := TrainSingle(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ck.gob")
	if err := SaveCheckpoint(path, model, cfg); err != nil {
		t.Fatal(err)
	}
	restored, rcfg, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if rcfg.Model != cfg.Model {
		t.Fatalf("config mismatch: %+v vs %+v", rcfg.Model, cfg.Model)
	}
	orig, rest := model.Params(), restored.Params()
	for i := range orig {
		for j := range orig[i].Value.Data() {
			if orig[i].Value.Data()[j] != rest[i].Value.Data()[j] {
				t.Fatalf("param %s differs after round trip", orig[i].Name)
			}
		}
	}
}

func TestLoadCheckpointMissingFile(t *testing.T) {
	if _, _, err := LoadCheckpoint(filepath.Join(t.TempDir(), "nope.gob")); err == nil {
		t.Fatal("expected error")
	}
}

// TestEvaluateDistributedMatchesSerial: sharded evaluation with a metric
// allreduce must agree with the single-process evaluation.
func TestEvaluateDistributedMatchesSerial(t *testing.T) {
	cfg := fastConfig()
	model, _, err := TrainSingle(cfg)
	if err != nil {
		t.Fatal(err)
	}
	serialM, serialB := Evaluate(model, cfg, 6)

	world := mpi.NewWorld(3)
	results := make([][2]float64, 3)
	world.Run(func(c *mpi.Comm) {
		// Each rank needs its own model replica with the same weights.
		replica := models.NewEDSR(cfg.Model, tensor.NewRNG(1))
		for i, p := range replica.Params() {
			p.Value.CopyFrom(model.Params()[i].Value)
		}
		m, b := EvaluateDistributed(c, replica, cfg, 6)
		results[c.Rank()] = [2]float64{m, b}
	})
	for r, got := range results {
		if math.Abs(got[0]-serialM) > 0.01 || math.Abs(got[1]-serialB) > 0.01 {
			t.Fatalf("rank %d: distributed (%g, %g) vs serial (%g, %g)",
				r, got[0], got[1], serialM, serialB)
		}
	}
	// All ranks must agree exactly.
	for r := 1; r < 3; r++ {
		if results[r] != results[0] {
			t.Fatalf("ranks disagree: %v vs %v", results[r], results[0])
		}
	}
}
