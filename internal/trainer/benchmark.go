package trainer

import (
	"fmt"
	"strings"

	"repro/internal/data"
	"repro/internal/metrics"
	"repro/internal/models"
	"repro/internal/tensor"
)

// BenchmarkScore is one (model, set) evaluation.
type BenchmarkScore struct {
	Set  string
	PSNR float64
	SSIM float64
	// BicubicPSNR is the classical baseline on the same set.
	BicubicPSNR float64
}

// EvaluateOnBenchmarks scores an SR model against the standard benchmark
// sets (the Set5/Set14-style evaluation every SR paper reports). pre is
// the model's input preprocessing (identity for EDSR-style models,
// bicubic upscale for SRCNN); scale the SR factor.
func EvaluateOnBenchmarks(model SRModel, pre func(*tensor.Tensor) *tensor.Tensor, scale, size int, seed uint64) []BenchmarkScore {
	if pre == nil {
		pre = func(t *tensor.Tensor) *tensor.Tensor { return t }
	}
	var scores []BenchmarkScore
	for _, set := range data.StandardBenchmarks(size, seed) {
		var psnr, ssim, bic float64
		for i := 0; i < set.Len(); i++ {
			hr := set.HR(i)
			lr := models.BicubicDownscale(hr, scale)
			sr := model.Forward(pre(lr))
			sr.Clamp(0, 1)
			up := models.BicubicUpscale(lr, scale)
			up.Clamp(0, 1)
			psnr += metrics.PSNR(sr, hr, 1)
			ssim += metrics.SSIM(sr, hr, 1)
			bic += metrics.PSNR(up, hr, 1)
		}
		n := float64(set.Len())
		scores = append(scores, BenchmarkScore{
			Set: set.Name, PSNR: psnr / n, SSIM: ssim / n, BicubicPSNR: bic / n,
		})
	}
	return scores
}

// FormatBenchmarkScores renders the standard results table.
func FormatBenchmarkScores(model string, scores []BenchmarkScore) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Benchmark evaluation — %s\n", model)
	fmt.Fprintf(&b, "%-14s %12s %10s %14s %10s\n", "Set", "PSNR (dB)", "SSIM", "bicubic (dB)", "Δ dB")
	for _, s := range scores {
		fmt.Fprintf(&b, "%-14s %12.2f %10.4f %14.2f %+10.2f\n",
			s.Set, s.PSNR, s.SSIM, s.BicubicPSNR, s.PSNR-s.BicubicPSNR)
	}
	return b.String()
}
