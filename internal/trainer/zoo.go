package trainer

import (
	"fmt"
	"strings"

	"repro/internal/data"
	"repro/internal/metrics"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// SRModel is any trainable super-resolution network from the model zoo.
type SRModel interface {
	Forward(x *tensor.Tensor) *tensor.Tensor
	Backward(g *tensor.Tensor) *tensor.Tensor
	Params() []*nn.Param
	NumParams() int
}

// Arch names a model-zoo architecture.
type Arch string

// Architectures available to TrainZoo; the set mirrors the paper's
// Section II background (SRCNN → SRResNet → EDSR lineage).
const (
	ArchEDSR     Arch = "edsr"
	ArchSRCNN    Arch = "srcnn"
	ArchSRResNet Arch = "srresnet"
	ArchFSRCNN   Arch = "fsrcnn"
)

// ParseArch validates an architecture name.
func ParseArch(s string) (Arch, error) {
	switch Arch(strings.ToLower(s)) {
	case ArchEDSR:
		return ArchEDSR, nil
	case ArchSRCNN:
		return ArchSRCNN, nil
	case ArchSRResNet:
		return ArchSRResNet, nil
	case ArchFSRCNN:
		return ArchFSRCNN, nil
	default:
		return "", fmt.Errorf("trainer: unknown architecture %q (have edsr, srcnn, srresnet, fsrcnn)", s)
	}
}

// ZooConfig configures a zoo training run. SRCNN ignores Blocks/Feats
// (its architecture is fixed) and operates on bicubic-upscaled input.
type ZooConfig struct {
	Arch   Arch
	Scale  int
	Blocks int
	Feats  int
	Train  Config // Steps, BatchSize, PatchSize, LR, Seed, Data
}

// Build constructs the model and its input preprocessing. EDSR and
// SRResNet learn the upscaling themselves; SRCNN refines a bicubic
// upscale, so its preprocessing blows the LR patch up first.
func (z ZooConfig) Build(rng *tensor.RNG) (SRModel, func(lr *tensor.Tensor) *tensor.Tensor, error) {
	pre := func(lr *tensor.Tensor) *tensor.Tensor { return lr }
	switch z.Arch {
	case ArchEDSR:
		cfg := models.EDSRConfig{NumBlocks: z.Blocks, NumFeats: z.Feats, Scale: z.Scale, ResScale: 0.1, Colors: 3}
		if err := cfg.Validate(); err != nil {
			return nil, nil, err
		}
		return models.NewEDSR(cfg, rng), pre, nil
	case ArchSRResNet:
		if z.Scale != 2 && z.Scale != 4 {
			return nil, nil, fmt.Errorf("trainer: SRResNet supports x2/x4, got x%d", z.Scale)
		}
		return models.NewSRResNet(3, z.Blocks, z.Feats, z.Scale, rng), pre, nil
	case ArchSRCNN:
		scale := z.Scale
		return models.NewSRCNN(3, rng), func(lr *tensor.Tensor) *tensor.Tensor {
			return models.BicubicUpscale(lr, scale)
		}, nil
	case ArchFSRCNN:
		if z.Scale < 2 || z.Scale > 4 {
			return nil, nil, fmt.Errorf("trainer: FSRCNN supports x2-x4, got x%d", z.Scale)
		}
		// Published configuration: d=56, s=12, m=4; Feats/Blocks override
		// d and m when set.
		d, m := 56, 4
		if z.Feats > 0 {
			d = z.Feats
		}
		if z.Blocks > 0 {
			m = z.Blocks
		}
		return models.NewFSRCNN(3, d, 12, m, z.Scale, rng), pre, nil
	default:
		return nil, nil, fmt.Errorf("trainer: unknown architecture %q", z.Arch)
	}
}

// ZooResult is the outcome of one zoo training run.
type ZooResult struct {
	Arch        Arch
	Params      int
	FinalLoss   float64
	PSNR        float64
	PSNRBicubic float64
}

// TrainZoo trains one architecture on the synthetic dataset and evaluates
// PSNR against ground truth and the bicubic baseline on held-out images.
func TrainZoo(z ZooConfig, evalImages int) (ZooResult, error) {
	cfg := z.Train
	if cfg.Steps < 1 || cfg.BatchSize < 1 {
		return ZooResult{}, fmt.Errorf("trainer: invalid zoo config %+v", cfg)
	}
	rng := tensor.NewRNG(cfg.Seed)
	model, pre, err := z.Build(rng)
	if err != nil {
		return ZooResult{}, err
	}
	ds := data.NewDataset(cfg.Data)
	loader, err := data.NewLoader(ds, data.LoaderConfig{
		BatchSize: cfg.BatchSize,
		PatchSize: cfg.PatchSize,
		Scale:     z.Scale,
		Rank:      0,
		WorldSize: 1,
		Seed:      cfg.Seed + 100,
	})
	if err != nil {
		return ZooResult{}, err
	}
	opt := nn.NewAdam(model.Params(), cfg.LR)
	loss := nn.L1Loss{}
	var last float64
	for step := 0; step < cfg.Steps; step++ {
		batch := loader.Next()
		opt.ZeroGrad()
		pred := model.Forward(pre(batch.LR))
		l, grad := loss.Forward(pred, batch.HR)
		model.Backward(grad)
		opt.Step()
		last = l
		if cfg.LogEvery > 0 && cfg.Log != nil && (step+1)%cfg.LogEvery == 0 {
			fmt.Fprintf(cfg.Log, "[%s] step %4d  loss %.5f\n", z.Arch, step+1, l)
		}
	}

	res := ZooResult{Arch: z.Arch, Params: model.NumParams(), FinalLoss: last}
	eval := data.NewDataset(data.SyntheticConfig{
		Images: cfg.Data.Images + evalImages, Height: cfg.Data.Height,
		Width: cfg.Data.Width, Channels: cfg.Data.Channels, Seed: cfg.Data.Seed,
	})
	for i := 0; i < evalImages; i++ {
		lr, hr := eval.Pair(cfg.Data.Images+i, z.Scale)
		sr := model.Forward(pre(lr))
		sr.Clamp(0, 1)
		bi := models.BicubicUpscale(lr, z.Scale)
		bi.Clamp(0, 1)
		res.PSNR += metrics.PSNR(sr, hr, 1)
		res.PSNRBicubic += metrics.PSNR(bi, hr, 1)
	}
	if evalImages > 0 {
		res.PSNR /= float64(evalImages)
		res.PSNRBicubic /= float64(evalImages)
	}
	return res, nil
}
