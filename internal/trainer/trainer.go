// Package trainer implements real (CPU) training loops for the
// super-resolution models: single-process training and Horovod-style
// data-parallel training over the in-process MPI substrate, with
// throughput metering, PSNR evaluation against the bicubic baseline, and
// gob checkpoints.
package trainer

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/internal/collective"
	"repro/internal/data"
	"repro/internal/horovod"
	"repro/internal/metrics"
	"repro/internal/models"
	"repro/internal/mpi"
	"repro/internal/nn"
	"repro/internal/tensor"
	"repro/internal/trace"
)

// Config drives a training run.
type Config struct {
	// Model configuration (EDSR).
	Model models.EDSRConfig
	// Data generation parameters.
	Data data.SyntheticConfig
	// Steps of training.
	Steps int
	// BatchSize per process.
	BatchSize int
	// PatchSize (LR pixels).
	PatchSize int
	// LR is the base learning rate (scaled by world size when
	// distributed, per the Horovod guideline).
	LR float64
	// LRDecayEvery halves the learning rate every this many steps
	// (0 disables; EDSR's published schedule uses 2e5).
	LRDecayEvery int
	// Seed for weights and data sampling.
	Seed uint64
	// Compression selects the gradient-compression allreduce variant for
	// distributed runs: "" or "none" (exact float32 ring), "fp16"
	// (half-precision wire), "topk" (top-k sparsification with error
	// feedback), "hier" / "hier-fp16" (two-level node-aware reduction,
	// exact or fp16 inter-node wire).
	Compression string
	// TopKRatio keeps ⌈n/ratio⌉ elements per gradient bucket under
	// "topk" (0 = the default 32, i.e. ~3% density).
	TopKRatio int
	// GPUsPerNode sets the world's node topology for the "hier" variants
	// (0 = 1 GPU per node).
	GPUsPerNode int
	// LogEvery prints progress every N steps to Log (0 disables).
	LogEvery int
	// Log receives progress lines (nil for no logging).
	Log io.Writer
	// Trace, when non-nil, records per-phase spans (step, forward,
	// backward, grad hooks, engine reductions, drain, checkpoints) on
	// every rank; gather the merged timeline with Trace.Timeline().
	// Runtime-only, like Log: stripped before checkpoint serialization.
	Trace *trace.Session
	// Metrics, when non-nil, receives live counters/gauges/histograms
	// (rank 0 updates them); serve with trace.ServeMetrics.
	// Runtime-only, like Log.
	Metrics *trace.TrainMetrics
}

// sanitized strips the runtime-only fields (writers, tracing, metrics)
// that cannot or should not be serialized into checkpoints.
func (c Config) sanitized() Config {
	c.Log = nil
	c.Trace = nil
	c.Metrics = nil
	return c
}

// DefaultConfig returns a laptop-scale configuration that trains a tiny
// EDSR for real.
func DefaultConfig() Config {
	return Config{
		Model:     models.EDSRTiny(),
		Data:      data.SyntheticConfig{Images: 64, Height: 48, Width: 48, Channels: 3, Seed: 7},
		Steps:     60,
		BatchSize: 4,
		PatchSize: 12,
		LR:        1e-3,
		Seed:      1,
	}
}

// defaultTopKRatio is the sparsification rate used when TopKRatio is
// unset: keep 1/32 of each bucket, DGC's moderate operating point.
const defaultTopKRatio = 32

// newAllreduceFn resolves the configured compression variant to a fresh
// engine AllreduceFn, nil meaning the exact backend ring. Call it once
// per rank: the top-k variant carries per-rank error-feedback state that
// must never be shared across ranks.
func (c Config) newAllreduceFn() (func(*mpi.Comm, []float32) error, error) {
	ratio := c.TopKRatio
	if ratio == 0 {
		ratio = defaultTopKRatio
	}
	return collective.NewAllreduceFnByName(c.Compression, ratio)
}

// fusionThreshold returns the engine fusion threshold the compression
// variant requires. Top-k needs unfused reductions: its error-feedback
// residuals are keyed by buffer identity, so every tensor must reduce in
// its own stable registered buffer, not a recycled fusion buffer. The
// other variants keep Horovod's 64 MB default.
func (c Config) fusionThreshold() int64 {
	if c.Compression == "topk" {
		return 1
	}
	return 64 << 20
}

// Stats summarizes a completed run.
type Stats struct {
	Steps        int
	FinalLoss    float64
	AvgLoss      float64
	ImagesPerSec float64
	WallSeconds  float64
	// AllocsPerStep is the mean number of heap allocations per training
	// step after the first (warm-up) step, measured process-wide with
	// runtime.ReadMemStats. With the scratch-pool kernels the model's
	// forward/backward is allocation-free at steady state, so this mostly
	// counts the data loader and logging; it is only meaningful for
	// single-process runs (distributed ranks share the process counters).
	AllocsPerStep float64
	// PSNRModel and PSNRBicubic compare the trained model against the
	// classical baseline on held-out images (computed by Evaluate).
	PSNRModel   float64
	PSNRBicubic float64
	// DrainMsPerStep is the mean exposed communication wait per step —
	// the milliseconds DistributedOptimizer.Drain blocked after backward
	// finished. Zero for single-process runs; the lower it is relative
	// to total allreduce time, the more communication the overlapped
	// backward actually hid.
	DrainMsPerStep float64
}

// TrainSingle trains an EDSR on one process and returns the model and
// stats.
func TrainSingle(cfg Config) (*models.EDSR, Stats, error) {
	return trainRank(cfg, nil, nil)
}

// TrainDistributed trains data-parallel replicas across an in-process MPI
// world, returning rank 0's model and stats. It follows the paper's
// Section III-A recipe: broadcast initial parameters, shard the data,
// wrap the optimizer, scale the learning rate.
func TrainDistributed(cfg Config, worldSize int) (*models.EDSR, Stats, error) {
	if worldSize < 1 {
		return nil, Stats{}, fmt.Errorf("trainer: world size %d", worldSize)
	}
	if worldSize == 1 {
		return TrainSingle(cfg)
	}
	if _, err := cfg.newAllreduceFn(); err != nil {
		return nil, Stats{}, err
	}
	world := mpi.NewWorld(worldSize)
	if cfg.GPUsPerNode > 0 {
		world.SetGPUsPerNode(cfg.GPUsPerNode)
	}
	type out struct {
		m   *models.EDSR
		st  Stats
		err error
	}
	results := make([]out, worldSize)
	if err := world.Run(func(c *mpi.Comm) {
		fn, _ := cfg.newAllreduceFn() // validated above; fresh state per rank
		engine := horovod.NewEngine(engineComm(cfg, c), horovod.Config{
			FusionThresholdBytes: cfg.fusionThreshold(),
			CycleTime:            0, // in-process ranks negotiate eagerly
			Average:              true,
			Algo:                 mpi.AlgoRing,
			AllreduceFn:          fn,
			Trace:                cfg.Trace.Recorder(c.Rank()),
			Metrics:              rankMetrics(cfg, c.Rank()),
		})
		m, st, err := trainRank(cfg, c, engine)
		results[c.Rank()] = out{m, st, err}
	}); err != nil {
		return nil, Stats{}, err
	}
	for r, o := range results {
		if o.err != nil {
			return nil, Stats{}, fmt.Errorf("rank %d: %w", r, o.err)
		}
	}
	return results[0].m, results[0].st, nil
}

// engineComm prepares the communicator the Horovod engine runs its
// collectives on. With tracing enabled the engine gets a fork whose
// Tracer lands spans on the engine track, and the rank's own Comm traces
// onto the trainer track; without tracing the engine shares c directly.
func engineComm(cfg Config, c *mpi.Comm) *mpi.Comm {
	if cfg.Trace == nil {
		return c
	}
	rec := cfg.Trace.Recorder(c.Rank())
	c.Tracer = rec.Sink(trace.TrackMain)
	ec := c.Fork()
	ec.Tracer = rec.Sink(trace.TrackEngine)
	return ec
}

// rankMetrics returns the live-metrics bundle for a rank: rank 0 only,
// so per-step counters reflect global steps, not steps × world size.
func rankMetrics(cfg Config, rank int) *trace.TrainMetrics {
	if rank != 0 {
		return nil
	}
	return cfg.Metrics
}

// trainRank is the shared per-process loop; comm and engine are nil for
// single-process training.
func trainRank(cfg Config, comm *mpi.Comm, engine *horovod.Engine) (*models.EDSR, Stats, error) {
	rank, world := 0, 1
	if comm != nil {
		rank, world = comm.Rank(), comm.Size()
	}
	if cfg.Steps < 1 || cfg.BatchSize < 1 {
		return nil, Stats{}, fmt.Errorf("trainer: invalid config: steps=%d batch=%d", cfg.Steps, cfg.BatchSize)
	}
	rng := tensor.NewRNG(cfg.Seed) // same weights on every rank before broadcast
	model := models.NewEDSR(cfg.Model, rng)
	params := model.Params()
	if err := nn.CheckUniqueNames(params); err != nil {
		return nil, Stats{}, err
	}

	ds := data.NewDataset(cfg.Data)
	loader, err := data.NewLoader(ds, data.LoaderConfig{
		BatchSize: cfg.BatchSize,
		PatchSize: cfg.PatchSize,
		Scale:     cfg.Model.Scale,
		Rank:      rank,
		WorldSize: world,
		Seed:      cfg.Seed + 100,
	})
	if err != nil {
		return nil, Stats{}, err
	}

	var opt nn.Optimizer = nn.NewAdam(params, cfg.LR)
	schedule := nn.StepLRSchedule{Base: cfg.LR, DecayEvery: cfg.LRDecayEvery, Gamma: 0.5}
	var dopt interface {
		Step()
		ZeroGrad()
	} = opt
	var distOpt *horovod.DistributedOptimizer
	if engine != nil {
		distOpt = horovod.NewDistributedOptimizer(opt, engine)
		// Overlap backward with communication: each parameter is submitted
		// for reduction the moment its backward contribution completes.
		model.SetGradHook(distOpt.GradHook())
		engine.Start()
		defer engine.Shutdown()
		horovod.BroadcastParameters(comm, params, 0)
		horovod.ScaleLR(opt, world)
		schedule.Base = cfg.LR * float64(world)
		dopt = distOpt
	}

	rec := cfg.Trace.Recorder(rank)
	tm := rankMetrics(cfg, rank)
	if tm != nil {
		tm.WorldSize.Set(float64(world))
	}
	loss := nn.L1Loss{}
	meter := metrics.ThroughputMeter{WarmupSteps: 1}
	var lossSum, lastLoss float64
	var gradBuf *tensor.Tensor
	var memWarm runtime.MemStats
	start := time.Now()
	for step := 0; step < cfg.Steps; step++ {
		if cfg.LRDecayEvery > 0 {
			schedule.Apply(opt, step)
		}
		batch := loader.Next()
		stepStart := time.Now()
		stepSpan := rec.Now()
		dopt.ZeroGrad()
		fwdSpan := rec.Now()
		pred := model.Forward(batch.LR)
		rec.Emit(trace.CatForward, trace.TrackMain, fwdSpan, 0)
		l, grad := loss.ForwardBuf(gradBuf, pred, batch.HR)
		gradBuf = grad
		bwdSpan := rec.Now()
		model.Backward(grad)
		rec.Emit(trace.CatBackward, trace.TrackMain, bwdSpan, 0)
		dopt.Step()
		rec.Emit(trace.CatStep, trace.TrackMain, stepSpan, 0)
		stepDur := time.Since(stepStart)
		meter.Record(cfg.BatchSize*world, stepDur.Seconds())
		tm.ObserveStep(cfg.BatchSize*world, stepDur, meter.ImagesPerSecond())
		lossSum += l
		lastLoss = l
		if step == 0 {
			// Step 0 grows every scratch buffer; the allocation meter
			// starts after it so it reflects steady state.
			runtime.ReadMemStats(&memWarm)
		}
		if cfg.LogEvery > 0 && cfg.Log != nil && (step+1)%cfg.LogEvery == 0 && rank == 0 {
			fmt.Fprintf(cfg.Log, "step %4d  loss %.5f  lr %.2e  %.1f img/s\n",
				step+1, l, opt.LR(), meter.ImagesPerSecond())
		}
	}
	st := Stats{
		Steps:        cfg.Steps,
		FinalLoss:    lastLoss,
		AvgLoss:      lossSum / float64(cfg.Steps),
		ImagesPerSec: meter.ImagesPerSecond(),
		WallSeconds:  time.Since(start).Seconds(),
	}
	if distOpt != nil {
		if total, n := distOpt.DrainStats(); n > 0 {
			st.DrainMsPerStep = total.Seconds() * 1e3 / float64(n)
		}
	}
	if cfg.Steps > 1 {
		var memEnd runtime.MemStats
		runtime.ReadMemStats(&memEnd)
		st.AllocsPerStep = float64(memEnd.Mallocs-memWarm.Mallocs) / float64(cfg.Steps-1)
	}
	if comm != nil {
		// Merge every rank's spans on rank 0 before the world tears down.
		cfg.Trace.Gather(comm, 0)
	}
	return model, st, nil
}

// Evaluate computes mean PSNR of the model's super-resolution and of
// bicubic upscaling over n held-out images (generated past the training
// set by index offset).
func Evaluate(model *models.EDSR, cfg Config, n int) (psnrModel, psnrBicubic float64) {
	eval := data.NewDataset(data.SyntheticConfig{
		Images:   cfg.Data.Images + n,
		Height:   cfg.Data.Height,
		Width:    cfg.Data.Width,
		Channels: cfg.Data.Channels,
		Seed:     cfg.Data.Seed,
	})
	var pm, pb float64
	for i := 0; i < n; i++ {
		lr, hr := eval.Pair(cfg.Data.Images+i, cfg.Model.Scale)
		sr := model.Forward(lr)
		sr.Clamp(0, 1)
		bi := models.BicubicUpscale(lr, cfg.Model.Scale)
		bi.Clamp(0, 1)
		pm += metrics.PSNR(sr, hr, 1)
		pb += metrics.PSNR(bi, hr, 1)
	}
	return pm / float64(n), pb / float64(n)
}

// EvaluateDistributed computes mean PSNR over n held-out images with the
// work sharded across the communicator's ranks; per-rank partial sums are
// combined with an allreduce — the standard Horovod evaluation pattern
// (metric tensors are allreduced exactly like gradients). Every rank
// returns the identical global means.
func EvaluateDistributed(comm *mpi.Comm, model *models.EDSR, cfg Config, n int) (psnrModel, psnrBicubic float64) {
	eval := data.NewDataset(data.SyntheticConfig{
		Images:   cfg.Data.Images + n,
		Height:   cfg.Data.Height,
		Width:    cfg.Data.Width,
		Channels: cfg.Data.Channels,
		Seed:     cfg.Data.Seed,
	})
	// Rank r scores images ≡ r (mod size); sums travel as a 3-element
	// metric tensor (psnr, bicubic, count).
	sums := make([]float32, 3)
	for i := comm.Rank(); i < n; i += comm.Size() {
		lr, hr := eval.Pair(cfg.Data.Images+i, cfg.Model.Scale)
		sr := model.Forward(lr)
		sr.Clamp(0, 1)
		bi := models.BicubicUpscale(lr, cfg.Model.Scale)
		bi.Clamp(0, 1)
		sums[0] += float32(metrics.PSNR(sr, hr, 1))
		sums[1] += float32(metrics.PSNR(bi, hr, 1))
		sums[2]++
	}
	comm.AllreduceSum(sums, mpi.AlgoRing)
	if sums[2] == 0 {
		return 0, 0
	}
	return float64(sums[0] / sums[2]), float64(sums[1] / sums[2])
}

// checkpoint is the serialized training state.
type checkpoint struct {
	Config Config
	Names  []string
	Values []*tensor.Tensor
}

// SaveCheckpoint writes the model parameters and config to path,
// atomically (see atomicWrite): a crash mid-save cannot destroy the
// previous checkpoint.
func SaveCheckpoint(path string, model *models.EDSR, cfg Config) error {
	ck := checkpoint{Config: cfg.sanitized()}
	for _, p := range model.Params() {
		ck.Names = append(ck.Names, p.Name)
		ck.Values = append(ck.Values, p.Value)
	}
	return atomicWriteGob(path, &ck)
}

// LoadCheckpoint restores a model saved by SaveCheckpoint.
func LoadCheckpoint(path string) (*models.EDSR, Config, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, Config{}, err
	}
	defer f.Close()
	var ck checkpoint
	if err := gob.NewDecoder(f).Decode(&ck); err != nil {
		return nil, Config{}, err
	}
	model := models.NewEDSR(ck.Config.Model, tensor.NewRNG(1))
	params := model.Params()
	if len(params) != len(ck.Names) {
		return nil, Config{}, fmt.Errorf("trainer: checkpoint has %d tensors, model %d", len(ck.Names), len(params))
	}
	for i, p := range params {
		if p.Name != ck.Names[i] {
			return nil, Config{}, fmt.Errorf("trainer: checkpoint tensor %q does not match model %q", ck.Names[i], p.Name)
		}
		if !p.Value.SameShape(ck.Values[i]) {
			return nil, Config{}, fmt.Errorf("trainer: shape mismatch for %q", p.Name)
		}
		p.Value.CopyFrom(ck.Values[i])
	}
	return model, ck.Config, nil
}
