package trainer

import (
	"path/filepath"
	"testing"
)

func TestSessionRunsSteps(t *testing.T) {
	s, err := NewSession(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	loss, err := s.RunSteps(5)
	if err != nil {
		t.Fatal(err)
	}
	if loss <= 0 || s.Step != 5 {
		t.Fatalf("loss %g step %d", loss, s.Step)
	}
	if s.ImagesPerSec() <= 0 {
		t.Fatal("no throughput recorded")
	}
	if _, err := s.RunSteps(-1); err == nil {
		t.Fatal("negative steps should fail")
	}
}

func TestSessionValidation(t *testing.T) {
	bad := fastConfig()
	bad.BatchSize = 0
	if _, err := NewSession(bad); err == nil {
		t.Fatal("expected error")
	}
}

// TestSessionResumeBitExact is the resume contract: train 16 straight vs
// train 8 + checkpoint + resume + train 8 must give identical parameters,
// optimizer state, and data stream.
func TestSessionResumeBitExact(t *testing.T) {
	cfg := fastConfig()
	cfg.Steps = 0 // sessions drive their own step counts

	straight, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := straight.RunSteps(16); err != nil {
		t.Fatal(err)
	}

	first, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := first.RunSteps(8); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "session.gob")
	if err := first.Save(path); err != nil {
		t.Fatal(err)
	}
	resumed, err := ResumeSession(path)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Step != 8 {
		t.Fatalf("resumed step %d", resumed.Step)
	}
	if _, err := resumed.RunSteps(8); err != nil {
		t.Fatal(err)
	}

	a, b := straight.Model.Params(), resumed.Model.Params()
	for i := range a {
		ad, bd := a[i].Value.Data(), b[i].Value.Data()
		for j := range ad {
			if ad[j] != bd[j] {
				t.Fatalf("parameter %s diverged at %d: %g vs %g (resume not bit-exact)",
					a[i].Name, j, ad[j], bd[j])
			}
		}
	}
	// Optimizer step counters must match too.
	_, _, sa := straight.Opt.State()
	_, _, sb := resumed.Opt.State()
	if sa != sb {
		t.Fatalf("Adam step %d vs %d", sa, sb)
	}
}

func TestResumeSessionMissingFile(t *testing.T) {
	if _, err := ResumeSession(filepath.Join(t.TempDir(), "none.gob")); err == nil {
		t.Fatal("expected error")
	}
}

func TestSessionWithLRDecay(t *testing.T) {
	cfg := fastConfig()
	cfg.LRDecayEvery = 3
	s, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunSteps(7); err != nil {
		t.Fatal(err)
	}
	// After 7 steps with decay-every-3, lr = base/4.
	if got, want := s.Opt.LR(), cfg.LR/4; got != want {
		t.Fatalf("lr %g, want %g", got, want)
	}
}
