package trainer

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// atomicWrite writes a file crash-safely: the payload goes to a fresh
// temp file in the destination directory, is fsynced, and only then
// renamed over path. A crash (or a write error) at any point leaves the
// previous file at path untouched — the property a checkpoint file must
// have, since the file being replaced is usually the only good copy of
// the training state. The directory is synced after the rename so the
// new name itself survives a power loss.
func atomicWrite(path string, write func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("trainer: checkpoint temp file: %w", err)
	}
	tmp := f.Name()
	// Until the rename happens, any failure must remove the temp file and
	// report the first error; the close error matters too (NFS and full
	// disks surface write failures there).
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	if err = write(f); err != nil {
		return fmt.Errorf("trainer: checkpoint encode: %w", err)
	}
	if err = f.Sync(); err != nil {
		return fmt.Errorf("trainer: checkpoint fsync: %w", err)
	}
	if err = f.Close(); err != nil {
		return fmt.Errorf("trainer: checkpoint close: %w", err)
	}
	if err = os.Rename(tmp, path); err != nil {
		return fmt.Errorf("trainer: checkpoint rename: %w", err)
	}
	if d, derr := os.Open(dir); derr == nil {
		// Persist the rename itself; some filesystems do not support
		// fsync on directories, which is not worth failing the save for.
		d.Sync()
		d.Close()
	}
	return nil
}

// atomicWriteGob gob-encodes v through atomicWrite.
func atomicWriteGob(path string, v any) error {
	return atomicWrite(path, func(w io.Writer) error {
		return gob.NewEncoder(w).Encode(v)
	})
}
