package trainer

import (
	"encoding/gob"
	"fmt"
	"os"
	"time"

	"repro/internal/data"
	"repro/internal/metrics"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Session is a resumable single-process training run: unlike the fire-and-
// forget TrainSingle, it owns the full mutable state — model parameters,
// Adam moments, the data-sampling stream, and the step counter — and can
// round-trip all of it through a checkpoint file so a resumed run is
// bit-identical to one that never stopped.
type Session struct {
	Cfg    Config
	Model  *models.EDSR
	Opt    *nn.Adam
	Loader *data.Loader
	Step   int

	loss  nn.L1Loss
	meter metrics.ThroughputMeter
}

// NewSession builds a fresh training session.
func NewSession(cfg Config) (*Session, error) {
	if cfg.Steps < 0 || cfg.BatchSize < 1 {
		return nil, fmt.Errorf("trainer: invalid session config %+v", cfg)
	}
	rng := tensor.NewRNG(cfg.Seed)
	model := models.NewEDSR(cfg.Model, rng)
	ds := data.NewDataset(cfg.Data)
	loader, err := data.NewLoader(ds, data.LoaderConfig{
		BatchSize: cfg.BatchSize,
		PatchSize: cfg.PatchSize,
		Scale:     cfg.Model.Scale,
		Rank:      0,
		WorldSize: 1,
		Seed:      cfg.Seed + 100,
	})
	if err != nil {
		return nil, err
	}
	return &Session{
		Cfg:    cfg,
		Model:  model,
		Opt:    nn.NewAdam(model.Params(), cfg.LR),
		Loader: loader,
	}, nil
}

// RunSteps performs n training steps and returns the last loss.
func (s *Session) RunSteps(n int) (float64, error) {
	if n < 0 {
		return 0, fmt.Errorf("trainer: negative step count")
	}
	schedule := nn.StepLRSchedule{Base: s.Cfg.LR, DecayEvery: s.Cfg.LRDecayEvery, Gamma: 0.5}
	var last float64
	for i := 0; i < n; i++ {
		if s.Cfg.LRDecayEvery > 0 {
			schedule.Apply(s.Opt, s.Step)
		}
		batch := s.Loader.Next()
		start := time.Now()
		s.Opt.ZeroGrad()
		pred := s.Model.Forward(batch.LR)
		l, grad := s.loss.Forward(pred, batch.HR)
		s.Model.Backward(grad)
		s.Opt.Step()
		s.meter.Record(s.Cfg.BatchSize, time.Since(start).Seconds())
		s.Step++
		last = l
		if s.Cfg.LogEvery > 0 && s.Cfg.Log != nil && s.Step%s.Cfg.LogEvery == 0 {
			fmt.Fprintf(s.Cfg.Log, "step %4d  loss %.5f\n", s.Step, l)
		}
	}
	return last, nil
}

// ImagesPerSec returns the session's running throughput.
func (s *Session) ImagesPerSec() float64 { return s.meter.ImagesPerSecond() }

// sessionState is the serialized form of a Session.
type sessionState struct {
	Config   Config
	Step     int
	RNGState uint64
	Names    []string
	Values   []*tensor.Tensor
	AdamM    []*tensor.Tensor
	AdamV    []*tensor.Tensor
	AdamStep int
}

// Save writes the complete training state to path. The write is
// crash-safe: the state is encoded and fsynced into a temp file that is
// atomically renamed over path, so a crash mid-save (or an encode,
// sync, or close error) leaves the previous checkpoint intact.
func (s *Session) Save(path string) error {
	st := sessionState{
		Config:   s.Cfg,
		Step:     s.Step,
		RNGState: s.Loader.RNGState(),
	}
	st.Config = st.Config.sanitized() // writers/tracing are runtime-only, not serializable
	m, v, adamStep := s.Opt.State()
	st.AdamM, st.AdamV, st.AdamStep = m, v, adamStep
	for _, p := range s.Model.Params() {
		st.Names = append(st.Names, p.Name)
		st.Values = append(st.Values, p.Value)
	}
	return atomicWriteGob(path, &st)
}

// ResumeSession restores a session saved with Save; the resumed run
// continues the exact parameter, optimizer, and data streams.
func ResumeSession(path string) (*Session, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var st sessionState
	if err := gob.NewDecoder(f).Decode(&st); err != nil {
		return nil, err
	}
	// Log writers cannot be serialized.
	st.Config.Log = nil
	s, err := NewSession(st.Config)
	if err != nil {
		return nil, err
	}
	params := s.Model.Params()
	if len(params) != len(st.Names) {
		return nil, fmt.Errorf("trainer: checkpoint has %d tensors, model %d", len(st.Names), len(params))
	}
	for i, p := range params {
		if p.Name != st.Names[i] {
			return nil, fmt.Errorf("trainer: checkpoint tensor %q does not match %q", st.Names[i], p.Name)
		}
		if !p.Value.SameShape(st.Values[i]) {
			return nil, fmt.Errorf("trainer: shape mismatch for %q", p.Name)
		}
		p.Value.CopyFrom(st.Values[i])
	}
	m, v, _ := s.Opt.State()
	if len(st.AdamM) != len(m) || len(st.AdamV) != len(v) {
		return nil, fmt.Errorf("trainer: optimizer state size mismatch")
	}
	for i := range m {
		m[i].CopyFrom(st.AdamM[i])
		v[i].CopyFrom(st.AdamV[i])
	}
	s.Opt.SetStep(st.AdamStep)
	s.Step = st.Step
	s.Loader.SetRNGState(st.RNGState)
	return s, nil
}
