package hvprof

import (
	"strings"
	"sync"
	"testing"
)

func TestTimelineSpansSorted(t *testing.T) {
	tl := NewTimeline()
	tl.Add("b", "x", 0.5, 0.6)
	tl.Add("a", "y", 0.2, 0.3)
	tl.Add("a", "z", 0.0, 0.1)
	spans := tl.Spans()
	if spans[0].Lane != "a" || spans[0].Start != 0.0 {
		t.Fatalf("sort order wrong: %+v", spans)
	}
	if spans[2].Lane != "b" {
		t.Fatalf("lane order wrong: %+v", spans)
	}
}

func TestTimelineReversedSpanNormalized(t *testing.T) {
	tl := NewTimeline()
	tl.Add("a", "x", 0.9, 0.1)
	s := tl.Spans()[0]
	if s.Start != 0.1 || s.End != 0.9 {
		t.Fatalf("span not normalized: %+v", s)
	}
}

func TestTimelineRender(t *testing.T) {
	tl := NewTimeline()
	tl.Add("compute", "forward", 0, 0.10)
	tl.Add("compute", "backward", 0.10, 0.30)
	tl.Add("comm", "allreduce", 0.15, 0.25)
	out := tl.Render(0, 0.3, 60)
	if !strings.Contains(out, "compute") || !strings.Contains(out, "comm") {
		t.Fatalf("lanes missing:\n%s", out)
	}
	if !strings.Contains(out, "f") || !strings.Contains(out, "a") {
		t.Fatalf("marks missing:\n%s", out)
	}
	// Overlapping spans on one lane show '#'.
	tl.Add("comm", "negotiate", 0.2, 0.22)
	out = tl.Render(0, 0.3, 60)
	if !strings.Contains(out, "#") {
		t.Fatalf("overlap marker missing:\n%s", out)
	}
}

func TestTimelineRenderDegenerate(t *testing.T) {
	tl := NewTimeline()
	if !strings.Contains(tl.Render(1, 1, 50), "empty") {
		t.Fatal("degenerate range should render as empty")
	}
	tl.Add("a", "x", 0, 1)
	if tl.Render(0, 1, 3) == "" {
		t.Fatal("tiny width should still render")
	}
}

func TestTimelineConcurrentAdd(t *testing.T) {
	tl := NewTimeline()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				tl.Add("lane", "x", float64(j), float64(j)+0.5)
			}
		}()
	}
	wg.Wait()
	if len(tl.Spans()) != 400 {
		t.Fatalf("spans %d", len(tl.Spans()))
	}
}
