// Package hvprof reimplements the paper's Horovod/MPI profiling tool of
// the same name (Awan et al., HotI'19): it records every collective a
// communication backend executes, organized by operation and message size,
// and renders the bucket tables the paper reports in Fig. 14 and Table I.
//
// The profiler is deliberately backend-agnostic (the paper stresses this):
// it accepts records from the real in-process MPI (wall-clock seconds) and
// from the discrete-event cluster simulator (virtual seconds) through the
// same interface.
package hvprof

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Bucket boundaries follow Table I of the paper.
var bucketEdges = []int64{
	1,
	128 << 10, // 128 KB
	16 << 20,  // 16 MB
	32 << 20,  // 32 MB
	64 << 20,  // 64 MB
}

// BucketNames are the human-readable size classes from Table I.
var BucketNames = []string{
	"1-128 KB",
	"128 KB - 16 MB",
	"16 MB - 32 MB",
	"32 MB - 64 MB",
	"> 64 MB",
}

// NumBuckets is the number of message-size classes.
const NumBuckets = 5

// BucketOf maps a message size in bytes to its bucket index. Zero and
// negative sizes (empty collectives, malformed records) clamp to the
// smallest class rather than underflowing the table.
func BucketOf(bytes int64) int {
	if bytes <= 0 {
		return 0
	}
	for i := len(bucketEdges) - 1; i >= 1; i-- {
		if bytes >= bucketEdges[i] {
			return i
		}
	}
	return 0
}

// Record is one profiled collective call.
type Record struct {
	Op      string
	Bytes   int64
	Seconds float64
}

// Profiler accumulates collective records. It is safe for concurrent use
// (multiple ranks may share one profiler).
type Profiler struct {
	mu      sync.Mutex
	records []Record
}

// New creates an empty profiler.
func New() *Profiler { return &Profiler{} }

// Record implements the mpi.Profiler / simulated-backend interface.
func (p *Profiler) Record(op string, bytes int64, seconds float64) {
	p.mu.Lock()
	p.records = append(p.records, Record{Op: op, Bytes: bytes, Seconds: seconds})
	p.mu.Unlock()
}

// Reset discards all records.
func (p *Profiler) Reset() {
	p.mu.Lock()
	p.records = nil
	p.mu.Unlock()
}

// Records returns a snapshot of all records.
func (p *Profiler) Records() []Record {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]Record(nil), p.records...)
}

// BucketStat aggregates one (op, size-class) cell.
type BucketStat struct {
	Count   int
	Bytes   int64
	Seconds float64
}

// Report is the aggregate view of a profiling run.
type Report struct {
	// PerOp maps operation → per-bucket stats (length NumBuckets).
	PerOp map[string][]BucketStat
}

// Report aggregates the records into per-op, per-bucket stats.
func (p *Profiler) Report() Report {
	rep := Report{PerOp: map[string][]BucketStat{}}
	for _, r := range p.Records() {
		row := rep.PerOp[r.Op]
		if row == nil {
			row = make([]BucketStat, NumBuckets)
			rep.PerOp[r.Op] = row
		}
		b := BucketOf(r.Bytes)
		row[b].Count++
		row[b].Bytes += r.Bytes
		row[b].Seconds += r.Seconds
	}
	return rep
}

// TotalSeconds sums the time of one op across buckets (e.g. total
// MPI_Allreduce time, the quantity Table I improves by 45.4%).
func (r Report) TotalSeconds(op string) float64 {
	var s float64
	for _, b := range r.PerOp[op] {
		s += b.Seconds
	}
	return s
}

// Ops returns the recorded operation names, sorted.
func (r Report) Ops() []string {
	var ops []string
	for op := range r.PerOp {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	return ops
}

// String renders the per-op bucket table (the Fig. 14 view).
func (r Report) String() string {
	var b strings.Builder
	for _, op := range r.Ops() {
		fmt.Fprintf(&b, "== %s ==\n", op)
		fmt.Fprintf(&b, "%-16s %10s %14s %12s\n", "Message Size", "Calls", "Bytes", "Time (ms)")
		for i, st := range r.PerOp[op] {
			if st.Count == 0 {
				continue
			}
			fmt.Fprintf(&b, "%-16s %10d %14d %12.1f\n", BucketNames[i], st.Count, st.Bytes, st.Seconds*1000)
		}
		fmt.Fprintf(&b, "%-16s %10s %14s %12.1f\n", "Total", "", "", r.TotalSeconds(op)*1000)
	}
	return b.String()
}

// CompareRow is one line of a default-vs-optimized comparison (Table I).
type CompareRow struct {
	Bucket             string
	DefaultMs, OptMs   float64
	ImprovementPercent float64
}

// Compare builds the Table I comparison for one op between two reports.
// Improvement is (default−opt)/default·100; buckets empty in both reports
// are omitted.
func Compare(def, opt Report, op string) []CompareRow {
	d, o := def.PerOp[op], opt.PerOp[op]
	var rows []CompareRow
	for i := 0; i < NumBuckets; i++ {
		var dm, om float64
		if d != nil {
			dm = d[i].Seconds * 1000
		}
		if o != nil {
			om = o[i].Seconds * 1000
		}
		if dm == 0 && om == 0 {
			continue
		}
		row := CompareRow{Bucket: BucketNames[i], DefaultMs: dm, OptMs: om}
		if dm > 0 {
			row.ImprovementPercent = (dm - om) / dm * 100
		}
		rows = append(rows, row)
	}
	dTot, oTot := def.TotalSeconds(op)*1000, opt.TotalSeconds(op)*1000
	total := CompareRow{Bucket: "Total Time", DefaultMs: dTot, OptMs: oTot}
	if dTot > 0 {
		total.ImprovementPercent = (dTot - oTot) / dTot * 100
	}
	return append(rows, total)
}

// FormatCompare renders rows in the paper's Table I layout.
func FormatCompare(rows []CompareRow, op string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s time by message size (default vs optimized)\n", op)
	fmt.Fprintf(&b, "%-16s %12s %12s %14s\n", "Message Size", "Default(ms)", "Opt(ms)", "Improvement %")
	for _, r := range rows {
		impr := fmt.Sprintf("%.1f", r.ImprovementPercent)
		if r.ImprovementPercent < 2 && r.ImprovementPercent > -2 {
			impr = "~0"
		}
		fmt.Fprintf(&b, "%-16s %12.1f %12.1f %14s\n", r.Bucket, r.DefaultMs, r.OptMs, impr)
	}
	return b.String()
}
