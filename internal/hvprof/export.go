package hvprof

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"sort"
)

// WriteCSV exports the raw records as CSV (op, bytes, seconds) for
// external analysis, mirroring hvprof's trace-dump mode.
func (p *Profiler) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"op", "bytes", "seconds"}); err != nil {
		return err
	}
	for _, r := range p.Records() {
		if err := cw.Write([]string{
			r.Op,
			fmt.Sprintf("%d", r.Bytes),
			fmt.Sprintf("%.9f", r.Seconds),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// OpStats are latency statistics for one operation.
type OpStats struct {
	Op            string
	Count         int
	TotalSeconds  float64
	TotalBytes    int64
	MeanSeconds   float64
	P50, P95, P99 float64
	MaxSeconds    float64
	// EffectiveBandwidth is TotalBytes/TotalSeconds in bytes/sec (an
	// aggregate, not a per-message figure).
	EffectiveBandwidth float64
}

// Stats computes latency percentiles for one op across all its records.
func (p *Profiler) Stats(op string) (OpStats, bool) {
	var durs []float64
	st := OpStats{Op: op}
	for _, r := range p.Records() {
		if r.Op != op {
			continue
		}
		durs = append(durs, r.Seconds)
		st.Count++
		st.TotalSeconds += r.Seconds
		st.TotalBytes += r.Bytes
	}
	if st.Count == 0 {
		return st, false
	}
	sort.Float64s(durs)
	st.MeanSeconds = st.TotalSeconds / float64(st.Count)
	st.P50 = percentile(durs, 0.50)
	st.P95 = percentile(durs, 0.95)
	st.P99 = percentile(durs, 0.99)
	st.MaxSeconds = durs[len(durs)-1]
	if st.TotalSeconds > 0 {
		st.EffectiveBandwidth = float64(st.TotalBytes) / st.TotalSeconds
	}
	return st, true
}

// percentile returns the q-quantile of sorted values using linear
// interpolation.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// FormatStats renders OpStats for human reading.
func FormatStats(st OpStats) string {
	return fmt.Sprintf(
		"%s: n=%d total=%.1fms mean=%.3fms p50=%.3fms p95=%.3fms p99=%.3fms max=%.3fms bw=%.2fGB/s",
		st.Op, st.Count, st.TotalSeconds*1000, st.MeanSeconds*1000,
		st.P50*1000, st.P95*1000, st.P99*1000, st.MaxSeconds*1000,
		st.EffectiveBandwidth/1e9)
}
