package hvprof

import (
	"bytes"
	"encoding/csv"
	"math"
	"strings"
	"testing"
)

func TestWriteCSV(t *testing.T) {
	p := New()
	p.Record("allreduce", 1024, 0.005)
	p.Record("bcast", 64, 0.001)
	var buf bytes.Buffer
	if err := p.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 { // header + 2
		t.Fatalf("rows %d", len(rows))
	}
	if rows[0][0] != "op" || rows[1][0] != "allreduce" || rows[1][1] != "1024" {
		t.Fatalf("csv content: %v", rows)
	}
}

func TestStatsPercentiles(t *testing.T) {
	p := New()
	// 100 records: 1ms .. 100ms.
	for i := 1; i <= 100; i++ {
		p.Record("allreduce", 100, float64(i)/1000)
	}
	st, ok := p.Stats("allreduce")
	if !ok {
		t.Fatal("no stats")
	}
	if st.Count != 100 {
		t.Fatalf("count %d", st.Count)
	}
	if math.Abs(st.P50-0.0505) > 0.002 {
		t.Fatalf("p50 %g", st.P50)
	}
	if math.Abs(st.P95-0.095) > 0.002 {
		t.Fatalf("p95 %g", st.P95)
	}
	if st.MaxSeconds != 0.1 {
		t.Fatalf("max %g", st.MaxSeconds)
	}
	if math.Abs(st.MeanSeconds-0.0505) > 1e-9 {
		t.Fatalf("mean %g", st.MeanSeconds)
	}
	if st.EffectiveBandwidth <= 0 {
		t.Fatal("bandwidth missing")
	}
}

func TestStatsMissingOp(t *testing.T) {
	p := New()
	if _, ok := p.Stats("nothing"); ok {
		t.Fatal("expected no stats")
	}
}

func TestPercentileEdgeCases(t *testing.T) {
	if percentile(nil, 0.5) != 0 {
		t.Fatal("empty")
	}
	if percentile([]float64{7}, 0.99) != 7 {
		t.Fatal("single")
	}
	if got := percentile([]float64{1, 2}, 0.5); math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("interpolation: %g", got)
	}
}

func TestFormatStats(t *testing.T) {
	p := New()
	p.Record("allreduce", 1<<20, 0.01)
	st, _ := p.Stats("allreduce")
	out := FormatStats(st)
	if !strings.Contains(out, "allreduce") || !strings.Contains(out, "p95") {
		t.Fatalf("format: %s", out)
	}
}
