package hvprof

import (
	"math"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestBucketOf(t *testing.T) {
	cases := []struct {
		bytes int64
		want  int
	}{
		{1, 0},
		{1024, 0},
		{128<<10 - 1, 0},
		{128 << 10, 1},
		{1 << 20, 1},
		{16<<20 - 1, 1},
		{16 << 20, 2},
		{31 << 20, 2},
		{32 << 20, 3},
		{63 << 20, 3},
		{64 << 20, 4},
		{1 << 30, 4},
	}
	for _, c := range cases {
		if got := BucketOf(c.bytes); got != c.want {
			t.Errorf("BucketOf(%d) = %d, want %d", c.bytes, got, c.want)
		}
	}
}

// TestBucketOfBoundaries walks every bucket edge and checks the class
// assignment at edge−1, edge, and edge+1, plus the zero/negative clamp.
func TestBucketOfBoundaries(t *testing.T) {
	if got := len(bucketEdges); got != NumBuckets {
		t.Fatalf("bucketEdges has %d entries, NumBuckets %d", got, NumBuckets)
	}
	for _, bytes := range []int64{0, -1, -(64 << 20)} {
		if got := BucketOf(bytes); got != 0 {
			t.Errorf("BucketOf(%d) = %d, want clamp to 0", bytes, got)
		}
	}
	for i, edge := range bucketEdges {
		// Sizes below an edge belong to the previous class; the edge
		// itself opens class i. Edge 0 (1 byte) is the clamp floor.
		wantBelow := i - 1
		if i == 0 {
			wantBelow = 0
		}
		if got := BucketOf(edge - 1); got != wantBelow {
			t.Errorf("BucketOf(%d) = %d, want %d (below edge %d)", edge-1, got, wantBelow, i)
		}
		if got := BucketOf(edge); got != i {
			t.Errorf("BucketOf(%d) = %d, want %d (at edge)", edge, got, i)
		}
		wantAbove := i
		if i+1 < len(bucketEdges) && edge+1 >= bucketEdges[i+1] {
			wantAbove = i + 1
		}
		if got := BucketOf(edge + 1); got != wantAbove {
			t.Errorf("BucketOf(%d) = %d, want %d (above edge)", edge+1, got, wantAbove)
		}
	}
}

// Property: bucket index is monotone non-decreasing in message size.
func TestQuickBucketMonotone(t *testing.T) {
	f := func(a, b uint32) bool {
		x, y := int64(a), int64(b)
		if x > y {
			x, y = y, x
		}
		return BucketOf(x) <= BucketOf(y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestReportAggregation(t *testing.T) {
	p := New()
	p.Record("allreduce", 64, 0.010)
	p.Record("allreduce", 64, 0.020)
	p.Record("allreduce", 20<<20, 0.500)
	p.Record("bcast", 1024, 0.001)
	rep := p.Report()
	ar := rep.PerOp["allreduce"]
	if ar[0].Count != 2 || math.Abs(ar[0].Seconds-0.030) > 1e-12 {
		t.Fatalf("bucket 0: %+v", ar[0])
	}
	if ar[2].Count != 1 || ar[2].Bytes != 20<<20 {
		t.Fatalf("bucket 2: %+v", ar[2])
	}
	if math.Abs(rep.TotalSeconds("allreduce")-0.530) > 1e-12 {
		t.Fatalf("total %g", rep.TotalSeconds("allreduce"))
	}
	if ops := rep.Ops(); len(ops) != 2 || ops[0] != "allreduce" || ops[1] != "bcast" {
		t.Fatalf("ops %v", ops)
	}
}

func TestReset(t *testing.T) {
	p := New()
	p.Record("allreduce", 1, 1)
	p.Reset()
	if len(p.Records()) != 0 {
		t.Fatal("reset did not clear records")
	}
}

func TestConcurrentRecording(t *testing.T) {
	p := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				p.Record("allreduce", 4, 0.001)
			}
		}()
	}
	wg.Wait()
	if got := len(p.Records()); got != 800 {
		t.Fatalf("records %d, want 800", got)
	}
}

func TestCompareTableI(t *testing.T) {
	// Reconstruct the paper's Table I numbers and verify the comparison
	// math reproduces its improvement column.
	def, opt := New(), New()
	add := func(p *Profiler, bytes int64, ms float64) {
		p.Record("allreduce", bytes, ms/1000)
	}
	add(def, 64<<10, 392.0)
	add(opt, 64<<10, 391.2)
	add(def, 1<<20, 320.7)
	add(opt, 1<<20, 342.4)
	add(def, 20<<20, 1321.6)
	add(opt, 20<<20, 619.6)
	add(def, 40<<20, 5145.6)
	add(opt, 40<<20, 2587.151)

	rows := Compare(def.Report(), opt.Report(), "allreduce")
	if len(rows) != 5 { // 4 buckets + total
		t.Fatalf("rows: %d", len(rows))
	}
	byBucket := map[string]CompareRow{}
	for _, r := range rows {
		byBucket[r.Bucket] = r
	}
	if r := byBucket["16 MB - 32 MB"]; math.Abs(r.ImprovementPercent-53.1) > 0.2 {
		t.Fatalf("16-32MB improvement %g, paper says 53.1", r.ImprovementPercent)
	}
	if r := byBucket["32 MB - 64 MB"]; math.Abs(r.ImprovementPercent-49.7) > 0.2 {
		t.Fatalf("32-64MB improvement %g, paper says 49.7", r.ImprovementPercent)
	}
	// The paper reports 45.4% but its own per-bucket rows sum to 3940.4 ms
	// (not the printed 3918.5), which gives 45.1% — accept either.
	if r := byBucket["Total Time"]; math.Abs(r.ImprovementPercent-45.4) > 0.5 {
		t.Fatalf("total improvement %g, paper says 45.4", r.ImprovementPercent)
	}
}

func TestCompareHandlesMissingOp(t *testing.T) {
	def, opt := New(), New()
	def.Record("allreduce", 1<<20, 0.1)
	rows := Compare(def.Report(), opt.Report(), "allreduce")
	if len(rows) != 2 {
		t.Fatalf("rows %v", rows)
	}
	if rows[0].OptMs != 0 {
		t.Fatal("missing op should read as zero")
	}
}

// Golden renderings: the exact table layouts the paper-reproduction
// scripts parse. A formatting change must update these deliberately.
func TestReportStringGolden(t *testing.T) {
	p := New()
	p.Record("allreduce", 64, 0.010)
	p.Record("allreduce", 20<<20, 0.500)
	p.Record("bcast", 1024, 0.001)
	want := "== allreduce ==\n" +
		"Message Size          Calls          Bytes    Time (ms)\n" +
		"1-128 KB                  1             64         10.0\n" +
		"16 MB - 32 MB             1       20971520        500.0\n" +
		"Total                                             510.0\n" +
		"== bcast ==\n" +
		"Message Size          Calls          Bytes    Time (ms)\n" +
		"1-128 KB                  1           1024          1.0\n" +
		"Total                                               1.0\n"
	if got := p.Report().String(); got != want {
		t.Fatalf("Report.String golden mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestCompareGolden(t *testing.T) {
	def, opt := New(), New()
	def.Record("allreduce", 64<<10, 0.392)
	opt.Record("allreduce", 64<<10, 0.3912)
	def.Record("allreduce", 20<<20, 1.3216)
	opt.Record("allreduce", 20<<20, 0.6196)
	rows := Compare(def.Report(), opt.Report(), "allreduce")
	wantRows := []CompareRow{
		{Bucket: "1-128 KB", DefaultMs: 392.0, OptMs: 391.2},
		{Bucket: "16 MB - 32 MB", DefaultMs: 1321.6, OptMs: 619.6},
		{Bucket: "Total Time", DefaultMs: 1713.6, OptMs: 1010.8},
	}
	wantImpr := []float64{0.204, 53.117, 41.013}
	if len(rows) != len(wantRows) {
		t.Fatalf("rows %v", rows)
	}
	for i, r := range rows {
		w := wantRows[i]
		if r.Bucket != w.Bucket ||
			math.Abs(r.DefaultMs-w.DefaultMs) > 1e-9 ||
			math.Abs(r.OptMs-w.OptMs) > 1e-9 ||
			math.Abs(r.ImprovementPercent-wantImpr[i]) > 1e-3 {
			t.Errorf("row %d: got %+v, want %+v impr %.3f", i, r, w, wantImpr[i])
		}
	}
	want := "MPI_Allreduce time by message size (default vs optimized)\n" +
		"Message Size      Default(ms)      Opt(ms)  Improvement %\n" +
		"1-128 KB                392.0        391.2             ~0\n" +
		"16 MB - 32 MB          1321.6        619.6           53.1\n" +
		"Total Time             1713.6       1010.8           41.0\n"
	if got := FormatCompare(rows, "MPI_Allreduce"); got != want {
		t.Fatalf("FormatCompare golden mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestFormatting(t *testing.T) {
	p := New()
	p.Record("allreduce", 40<<20, 5.1456)
	s := p.Report().String()
	if !strings.Contains(s, "32 MB - 64 MB") || !strings.Contains(s, "allreduce") {
		t.Fatalf("report rendering missing fields:\n%s", s)
	}
	rows := Compare(p.Report(), p.Report(), "allreduce")
	out := FormatCompare(rows, "MPI_Allreduce")
	if !strings.Contains(out, "MPI_Allreduce") || !strings.Contains(out, "~0") {
		t.Fatalf("compare rendering:\n%s", out)
	}
}
