package hvprof

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Span is one timed activity on a lane of the timeline (a collective on
// the communication lane, a compute phase on a rank's lane, ...).
type Span struct {
	Lane       string
	Label      string
	Start, End float64
}

// Timeline collects spans and renders an ASCII Gantt chart — a poor
// man's Chrome-trace for the simulated training schedule. Safe for
// concurrent use.
type Timeline struct {
	mu    sync.Mutex
	spans []Span
}

// NewTimeline creates an empty timeline.
func NewTimeline() *Timeline { return &Timeline{} }

// Add records a span.
func (t *Timeline) Add(lane, label string, start, end float64) {
	if end < start {
		start, end = end, start
	}
	t.mu.Lock()
	t.spans = append(t.spans, Span{Lane: lane, Label: label, Start: start, End: end})
	t.mu.Unlock()
}

// Spans returns a snapshot sorted by (lane, start).
func (t *Timeline) Spans() []Span {
	t.mu.Lock()
	out := append([]Span(nil), t.spans...)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Lane != out[j].Lane {
			return out[i].Lane < out[j].Lane
		}
		return out[i].Start < out[j].Start
	})
	return out
}

// Render draws lanes as rows of width columns covering [from, to] seconds.
// Each span paints its extent with the first rune of its label; overlaps
// on a lane paint '#'.
func (t *Timeline) Render(from, to float64, width int) string {
	if width < 10 {
		width = 10
	}
	if to <= from {
		return "(empty timeline)\n"
	}
	spans := t.Spans()
	lanes := []string{}
	seen := map[string]bool{}
	for _, s := range spans {
		if !seen[s.Lane] {
			seen[s.Lane] = true
			lanes = append(lanes, s.Lane)
		}
	}
	sort.Strings(lanes)

	var b strings.Builder
	fmt.Fprintf(&b, "timeline %.1f ms .. %.1f ms (each column = %.2f ms)\n",
		from*1000, to*1000, (to-from)*1000/float64(width))
	scale := float64(width) / (to - from)
	for _, lane := range lanes {
		row := make([]rune, width)
		for i := range row {
			row[i] = '.'
		}
		for _, s := range spans {
			if s.Lane != lane || s.End < from || s.Start > to {
				continue
			}
			lo := int((s.Start - from) * scale)
			hi := int((s.End - from) * scale)
			if lo < 0 {
				lo = 0
			}
			if hi >= width {
				hi = width - 1
			}
			mark := '?'
			if len(s.Label) > 0 {
				mark = rune(s.Label[0])
			}
			for i := lo; i <= hi; i++ {
				if row[i] != '.' {
					row[i] = '#'
				} else {
					row[i] = mark
				}
			}
		}
		fmt.Fprintf(&b, "%-14s |%s|\n", lane, string(row))
	}
	fmt.Fprintf(&b, "legend: first letter of each activity; '#' = overlap; '.' = idle\n")
	return b.String()
}
