package core

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/collective"
	"repro/internal/models"
	"repro/internal/trainer"
)

func TestTuningToBackend(t *testing.T) {
	cases := []struct {
		tuning MPITuning
		want   collective.Backend
	}{
		{DefaultTuning(), collective.BackendMPI},
		{OptimizedTuning(), collective.BackendMPIOpt},
		{MPITuning{Visibility: cluster.VisibilityPinned, RegistrationCache: true}, collective.BackendMPIReg},
		{MPITuning{Visibility: cluster.VisibilitySplit}, collective.BackendMPIOpt},
		{MPITuning{UseNCCL: true}, collective.BackendNCCL},
	}
	for _, c := range cases {
		if got := c.tuning.Backend(); got != c.want {
			t.Errorf("%+v → %v, want %v", c.tuning, got, c.want)
		}
		if c.tuning.String() == "" {
			t.Error("empty tuning name")
		}
	}
}

func TestTuningValidate(t *testing.T) {
	if err := OptimizedTuning().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := MPITuning{Visibility: cluster.VisibilityMode(42)}
	if bad.Validate() == nil {
		t.Fatal("expected error")
	}
}

func TestDistributeRealTraining(t *testing.T) {
	cfg := trainer.DefaultConfig()
	cfg.Model = models.EDSRConfig{NumBlocks: 1, NumFeats: 6, Scale: 2, ResScale: 0.1, Colors: 3}
	cfg.Data.Images = 8
	cfg.Data.Height, cfg.Data.Width = 24, 24
	cfg.Steps = 4
	cfg.BatchSize = 2
	cfg.PatchSize = 8
	st, err := Distribute(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if st.Steps != 4 || st.FinalLoss <= 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestProfileProducesBuckets(t *testing.T) {
	rep, res := Profile(ProfileOptions{Nodes: 1, Steps: 5, Tuning: DefaultTuning()})
	if res.ImagesPerSec <= 0 {
		t.Fatal("no throughput")
	}
	if rep.TotalSeconds("allreduce") <= 0 {
		t.Fatal("no allreduce time recorded")
	}
}

func TestCompareTuningsTableIShape(t *testing.T) {
	rows := CompareTunings(DefaultTuning(), OptimizedTuning(), 1, 15)
	var total float64
	for _, r := range rows {
		if r.Bucket == "Total Time" {
			total = r.ImprovementPercent
		}
	}
	if total < 30 || total > 65 {
		t.Fatalf("total improvement %.1f%%, paper's Table I says 45.4%%", total)
	}
}

func TestScalingStudyShape(t *testing.T) {
	def := ScalingStudy(DefaultTuning(), []int{1, 8}, 4)
	opt := ScalingStudy(OptimizedTuning(), []int{1, 8}, 4)
	if len(def) != 2 || len(opt) != 2 {
		t.Fatal("point counts")
	}
	if def[1].Efficiency >= def[0].Efficiency {
		t.Fatal("efficiency must drop with scale")
	}
	if opt[1].Efficiency <= def[1].Efficiency {
		t.Fatalf("optimized (%.2f) must beat default (%.2f) at scale",
			opt[1].Efficiency, def[1].Efficiency)
	}
	if def[0].GPUs != 4 || def[1].GPUs != 32 {
		t.Fatalf("GPU counts %v", def)
	}
}
