// Package core is the library's front door: it implements the paper's
// three-phase method for distributing a deep-learning super-resolution
// model on an HPC cluster (Section III):
//
//  1. Distribute — add Horovod-style data parallelism to the single-GPU
//     training code (broadcast parameters, shard data, wrap the
//     optimizer, scale the learning rate).
//  2. Profile — run the hvprof communication profiler to find where the
//     MPI layer spends its time, bucketed by message size.
//  3. Optimize — apply the MPI-level fixes the profile points to: restore
//     CUDA IPC with a split visibility configuration
//     (MV2_VISIBLE_DEVICES) and enable the InfiniBand registration cache.
//
// Real (CPU) training runs through the in-process MPI substrate; the
// 512-GPU scaling study runs on the discrete-event Lassen model. Both
// paths share the Horovod fusion logic and the hvprof profiler.
package core

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/collective"
	"repro/internal/hvprof"
	"repro/internal/scaling"
	"repro/internal/trainer"
)

// MPITuning captures the optimization knobs of Section III-C/D.
type MPITuning struct {
	// Visibility selects the device-mapping strategy. VisibilitySplit is
	// the paper's proposed MV2_VISIBLE_DEVICES configuration.
	Visibility cluster.VisibilityMode
	// RegistrationCache enables MVAPICH2's InfiniBand pin-down cache.
	RegistrationCache bool
	// UseNCCL selects the NCCL backend instead of MPI (visibility and
	// cache settings are then moot — NCCL manages both itself).
	UseNCCL bool
}

// DefaultTuning is the paper's starting point: framework-safe pinning
// that silently disables CUDA IPC, no registration cache.
func DefaultTuning() MPITuning {
	return MPITuning{Visibility: cluster.VisibilityPinned}
}

// OptimizedTuning is the paper's MPI-Opt configuration.
func OptimizedTuning() MPITuning {
	return MPITuning{Visibility: cluster.VisibilitySplit, RegistrationCache: true}
}

// Backend maps the tuning to the communication backend it induces.
func (t MPITuning) Backend() collective.Backend {
	if t.UseNCCL {
		return collective.BackendNCCL
	}
	ipc := t.Visibility != cluster.VisibilityPinned
	switch {
	case ipc && t.RegistrationCache:
		return collective.BackendMPIOpt
	case ipc:
		// IPC without the cache is not one of the paper's named points;
		// it is closest to MPI-Opt in behaviour but we surface it as
		// MPI-Opt since the cache only affects inter-node registration.
		return collective.BackendMPIOpt
	case t.RegistrationCache:
		return collective.BackendMPIReg
	default:
		return collective.BackendMPI
	}
}

// String names the tuning like the paper does.
func (t MPITuning) String() string {
	return t.Backend().String()
}

// Distribute is phase 1: run real data-parallel training of the given
// configuration across worldSize in-process ranks. It returns rank 0's
// trained model and run statistics.
func Distribute(cfg trainer.Config, worldSize int) (*trainer.Stats, error) {
	_, st, err := trainer.TrainDistributed(cfg, worldSize)
	if err != nil {
		return nil, err
	}
	return &st, nil
}

// ProfileOptions configures phase 2.
type ProfileOptions struct {
	// Nodes of the simulated cluster (paper: 1 node / 4 GPUs for the
	// Fig. 14 profile).
	Nodes int
	// Steps of training to profile (paper: 100).
	Steps int
	// Tuning under test.
	Tuning MPITuning
}

// Profile is phase 2: simulate the configured training run with hvprof
// attached and return the per-bucket communication report.
func Profile(opt ProfileOptions) (hvprof.Report, scaling.Result) {
	if opt.Nodes == 0 {
		opt.Nodes = 1
	}
	if opt.Steps == 0 {
		opt.Steps = 100
	}
	prof := hvprof.New()
	res := scaling.Run(scaling.Options{
		Nodes:   opt.Nodes,
		Backend: opt.Tuning.Backend(),
		Steps:   opt.Steps,
		Prof:    prof,
	})
	return prof.Report(), res
}

// CompareTunings is phase 3's payoff: profile two tunings and produce the
// Table I-style improvement rows.
func CompareTunings(def, opt MPITuning, nodes, steps int) []hvprof.CompareRow {
	defRep, _ := Profile(ProfileOptions{Nodes: nodes, Steps: steps, Tuning: def})
	optRep, _ := Profile(ProfileOptions{Nodes: nodes, Steps: steps, Tuning: opt})
	return hvprof.Compare(defRep, optRep, "allreduce")
}

// ScalingPoint is one (backend, scale) measurement.
type ScalingPoint struct {
	GPUs         int
	ImagesPerSec float64
	Efficiency   float64
}

// ScalingStudy runs a tuning across the paper's scales and reports
// throughput and efficiency per point (Figs. 10-13).
func ScalingStudy(t MPITuning, nodeCounts []int, steps int) []ScalingPoint {
	if len(nodeCounts) == 0 {
		nodeCounts = scaling.PaperNodeCounts()
	}
	if steps == 0 {
		steps = 8
	}
	base := scaling.SingleGPUBaseline(0)
	var pts []ScalingPoint
	for _, n := range nodeCounts {
		r := scaling.Run(scaling.Options{Nodes: n, Backend: t.Backend(), Steps: steps})
		pts = append(pts, ScalingPoint{
			GPUs:         r.GPUs,
			ImagesPerSec: r.ImagesPerSec,
			Efficiency:   scaling.Efficiency(r, base),
		})
	}
	return pts
}

// Validate sanity-checks a tuning against the cluster model's assumptions.
func (t MPITuning) Validate() error {
	switch t.Visibility {
	case cluster.VisibilityAll, cluster.VisibilityPinned, cluster.VisibilitySplit:
		return nil
	default:
		return fmt.Errorf("core: unknown visibility mode %d", int(t.Visibility))
	}
}
