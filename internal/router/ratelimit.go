package router

import (
	"sync"
	"time"
)

// limiterMaxClients bounds the bucket map; beyond it, buckets idle
// longer than limiterIdle are swept on the next Allow.
const (
	limiterMaxClients = 4096
	limiterIdle       = time.Minute
)

// Limiter is a per-client token bucket: each client key accrues rate
// tokens/second up to burst, and one request costs one token. A denied
// request learns how long until the next token so the router can set
// Retry-After instead of making clients guess.
type Limiter struct {
	rate, burst float64
	now         func() time.Time // injectable for tests

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// NewLimiter builds a limiter; rate <= 0 disables limiting (Allow
// always passes). burst < 1 is clamped to 1 so a conforming client can
// always make progress.
func NewLimiter(rate, burst float64) *Limiter {
	if burst < 1 {
		burst = 1
	}
	return &Limiter{rate: rate, burst: burst, now: time.Now, buckets: map[string]*bucket{}}
}

// Allow spends one token for key. When denied, retryAfter is the time
// until the bucket holds a whole token again.
func (l *Limiter) Allow(key string) (ok bool, retryAfter time.Duration) {
	if l == nil || l.rate <= 0 {
		return true, 0
	}
	now := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	b, exists := l.buckets[key]
	if !exists {
		if len(l.buckets) >= limiterMaxClients {
			l.sweep(now)
		}
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[key] = b
	} else {
		b.tokens = min(l.burst, b.tokens+now.Sub(b.last).Seconds()*l.rate)
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
}

// sweep drops buckets idle past limiterIdle (caller holds mu). A full
// idle bucket carries no state worth keeping — it refills to burst on
// recreation anyway.
func (l *Limiter) sweep(now time.Time) {
	for k, b := range l.buckets {
		if now.Sub(b.last) > limiterIdle {
			delete(l.buckets, k)
		}
	}
}
