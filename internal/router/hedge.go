package router

import (
	"sort"
	"sync"
	"time"
)

// latencyWindow is how many recent winning-attempt latencies the
// tracker keeps for the p95 estimate.
const latencyWindow = 256

// latencyTracker estimates the fleet's p95 request latency from a
// sliding window of completed proxy attempts. The hedge delay tracks
// it so hedges fire only for genuinely slow outliers: "defer the
// hedge until the primary is slower than 95% of requests" is the
// classic tail-at-scale policy — ~5% extra load for a p99 that
// collapses to roughly the p95 of the healthy replicas.
type latencyTracker struct {
	mu      sync.Mutex
	samples [latencyWindow]time.Duration
	n       int // filled entries
	next    int // ring cursor
	scratch []time.Duration
}

// observe records one completed attempt's latency.
func (t *latencyTracker) observe(d time.Duration) {
	t.mu.Lock()
	t.samples[t.next] = d
	t.next = (t.next + 1) % latencyWindow
	if t.n < latencyWindow {
		t.n++
	}
	t.mu.Unlock()
}

// p95 returns the 95th-percentile latency of the window (0 with no
// samples yet).
func (t *latencyTracker) p95() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.n == 0 {
		return 0
	}
	if cap(t.scratch) < t.n {
		t.scratch = make([]time.Duration, t.n)
	}
	s := t.scratch[:t.n]
	copy(s, t.samples[:t.n])
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[min(t.n-1, t.n*95/100)]
}

// hedgeDelay is how long the router waits on the primary attempt
// before firing a hedge: the tracked p95, floored so a cold tracker
// (or an unrealistically fast fleet) doesn't hedge every request.
func (t *latencyTracker) hedgeDelay(floor time.Duration) time.Duration {
	return max(floor, t.p95())
}
