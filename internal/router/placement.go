package router

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"sync/atomic"
)

// Placement picks a backend for a request. key is the request's
// content hash (model + body bytes); tried, when non-nil, holds
// backends this request already attempted (hedges and retries go
// elsewhere). Pick returns nil when no eligible backend remains.
type Placement interface {
	Pick(p *Pool, key uint64, tried map[*Backend]bool) *Backend
	Name() string
}

// NewPlacement builds the named strategy over the pool's backends:
// "hash" (consistent hashing on the content key — repeat requests for
// the same image land on the same replica, compounding its result
// cache) or "least-loaded" (fewest in-flight requests — best tail
// latency under heterogeneous load).
func NewPlacement(name string, backends []*Backend) (Placement, error) {
	switch name {
	case "hash":
		return newHashRing(backends), nil
	case "least-loaded":
		return &leastLoaded{}, nil
	}
	return nil, fmt.Errorf("router: unknown placement %q (want hash or least-loaded)", name)
}

// hashKey is FNV-1a over the model name and request body — the same
// bytes the serve-side result cache keys on, so hash placement keeps a
// scene's repeat traffic on the replica that already cached it.
func hashKey(model string, body []byte) uint64 {
	h := fnv.New64a()
	h.Write([]byte(model))
	h.Write([]byte{0})
	h.Write(body)
	return mix64(h.Sum64())
}

// mix64 is the Murmur3 finalizer. FNV-1a alone does not avalanche:
// near-identical inputs (vnode labels "url#0", "url#1", ...) yield
// clustered sums, which would put a backend's virtual nodes in
// contiguous runs on the ring and skew arc ownership badly.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// vnodesPerBackend spreads each backend around the ring so removing
// one remaps only its own arcs (~1/N of keys), not the whole space.
const vnodesPerBackend = 64

// ringPoint is one virtual node.
type ringPoint struct {
	hash uint64
	b    *Backend
}

// hashRing is a consistent-hash ring, built once over the full backend
// set. Ineligible backends are skipped by walking clockwise, so keys
// owned by an ejected backend spill to their ring successors and
// return home on readmission.
type hashRing struct {
	points []ringPoint
}

func newHashRing(backends []*Backend) *hashRing {
	r := &hashRing{points: make([]ringPoint, 0, len(backends)*vnodesPerBackend)}
	for _, b := range backends {
		for v := 0; v < vnodesPerBackend; v++ {
			h := fnv.New64a()
			h.Write([]byte(b.URL.String()))
			h.Write([]byte("#" + strconv.Itoa(v)))
			r.points = append(r.points, ringPoint{hash: mix64(h.Sum64()), b: b})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r
}

func (r *hashRing) Name() string { return "hash" }

// Pick walks clockwise from key to the first eligible backend.
func (r *hashRing) Pick(p *Pool, key uint64, tried map[*Backend]bool) *Backend {
	n := len(r.points)
	start := sort.Search(n, func(i int) bool { return r.points[i].hash >= key }) % n
	seen := 0
	for i := start; seen < n; i = (i + 1) % n {
		seen++
		b := r.points[i].b
		if !tried[b] && p.eligible(b) {
			return b
		}
	}
	return nil
}

// leastLoaded picks the eligible backend with the fewest in-flight
// requests; ties rotate so an idle fleet still spreads traffic.
type leastLoaded struct {
	rr atomic.Uint64
}

func (l *leastLoaded) Name() string { return "least-loaded" }

func (l *leastLoaded) Pick(p *Pool, _ uint64, tried map[*Backend]bool) *Backend {
	backends := p.Backends()
	n := len(backends)
	off := int(l.rr.Add(1)) % n
	var best *Backend
	var bestLoad int64
	for i := 0; i < n; i++ {
		b := backends[(i+off)%n]
		if tried[b] || !p.eligible(b) {
			continue
		}
		if load := b.inflight.Load(); best == nil || load < bestLoad {
			best, bestLoad = b, load
		}
	}
	return best
}
