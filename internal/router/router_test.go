package router

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/trace"
)

// fakePool builds a Pool directly (no probing) for placement tests.
func fakePool(t *testing.T, n, maxInflight int) *Pool {
	t.Helper()
	p := &Pool{cfg: PoolConfig{MaxInflight: maxInflight}.withDefaults()}
	if maxInflight > 0 {
		p.cfg.MaxInflight = maxInflight
	}
	for i := 0; i < n; i++ {
		u, err := url.Parse(fmt.Sprintf("http://backend-%d.example:8080", i))
		if err != nil {
			t.Fatal(err)
		}
		b := &Backend{URL: u, Index: i}
		b.healthy.Store(true)
		p.backends = append(p.backends, b)
	}
	return p
}

// TestConsistentHashMinimalRemap pins the consistent-hash contract: a
// key's backend is stable, ejecting one backend remaps only the keys
// it owned, and readmission restores the original mapping.
func TestConsistentHashMinimalRemap(t *testing.T) {
	p := fakePool(t, 4, 0)
	ring := newHashRing(p.backends)

	const keys = 2000
	owner := make([]*Backend, keys)
	counts := map[int]int{}
	for k := 0; k < keys; k++ {
		b := ring.Pick(p, hashKey("m", []byte(fmt.Sprintf("key-%d", k))), nil)
		if b == nil {
			t.Fatal("no backend picked")
		}
		owner[k] = b
		counts[b.Index]++
	}
	// Rough balance: every backend owns a nontrivial share.
	for i := 0; i < 4; i++ {
		if counts[i] < keys/16 {
			t.Errorf("backend %d owns only %d/%d keys — ring badly unbalanced", i, counts[i], keys)
		}
	}

	// Eject backend 2: its keys spill, everyone else's stay put.
	p.backends[2].healthy.Store(false)
	remapped := 0
	for k := 0; k < keys; k++ {
		b := ring.Pick(p, hashKey("m", []byte(fmt.Sprintf("key-%d", k))), nil)
		if owner[k].Index == 2 {
			if b.Index == 2 {
				t.Fatalf("key %d still mapped to ejected backend", k)
			}
			remapped++
		} else if b != owner[k] {
			t.Fatalf("key %d moved from backend %d to %d though its owner stayed healthy",
				k, owner[k].Index, b.Index)
		}
	}
	if remapped != counts[2] {
		t.Fatalf("remapped %d keys, want exactly backend 2's %d", remapped, counts[2])
	}

	// Readmission restores the original map.
	p.backends[2].healthy.Store(true)
	for k := 0; k < keys; k++ {
		if b := ring.Pick(p, hashKey("m", []byte(fmt.Sprintf("key-%d", k))), nil); b != owner[k] {
			t.Fatalf("key %d did not return home after readmission", k)
		}
	}
}

// TestLeastLoadedPick checks load-based selection, the tried-set, and
// the MaxInflight eligibility cut.
func TestLeastLoadedPick(t *testing.T) {
	p := fakePool(t, 3, 4)
	ll := &leastLoaded{}
	p.backends[0].inflight.Store(3)
	p.backends[1].inflight.Store(1)
	p.backends[2].inflight.Store(2)

	if b := ll.Pick(p, 0, nil); b.Index != 1 {
		t.Fatalf("picked backend %d, want least-loaded 1", b.Index)
	}
	if b := ll.Pick(p, 0, map[*Backend]bool{p.backends[1]: true}); b.Index != 2 {
		t.Fatalf("picked backend %d, want 2 with 1 excluded", b.Index)
	}
	p.backends[1].inflight.Store(4) // at MaxInflight: ineligible
	if b := ll.Pick(p, 0, nil); b.Index != 2 {
		t.Fatalf("picked backend %d, want 2 with 1 saturated", b.Index)
	}
	p.backends[0].inflight.Store(4)
	p.backends[2].inflight.Store(4)
	if b := ll.Pick(p, 0, nil); b != nil {
		t.Fatalf("picked backend %d from a saturated fleet, want nil", b.Index)
	}
}

// TestLimiter checks the token bucket: burst spends down, denial
// reports the wait for the next token, refill restores service.
func TestLimiter(t *testing.T) {
	l := NewLimiter(1, 2) // 1 token/s, burst 2
	now := time.Unix(1000, 0)
	l.now = func() time.Time { return now }

	for i := 0; i < 2; i++ {
		if ok, _ := l.Allow("alice"); !ok {
			t.Fatalf("burst request %d denied", i)
		}
	}
	ok, wait := l.Allow("alice")
	if ok {
		t.Fatal("third immediate request allowed past burst")
	}
	if wait <= 0 || wait > time.Second {
		t.Fatalf("retry-after %v, want (0, 1s]", wait)
	}
	if ok, _ := l.Allow("bob"); !ok {
		t.Fatal("independent client denied")
	}
	now = now.Add(1100 * time.Millisecond)
	if ok, _ := l.Allow("alice"); !ok {
		t.Fatal("request denied after refill window")
	}
	// Disabled limiter always passes.
	if ok, _ := NewLimiter(0, 0).Allow("x"); !ok {
		t.Fatal("disabled limiter denied")
	}
}

// TestLatencyTracker checks the p95 estimate and the hedge-delay
// floor.
func TestLatencyTracker(t *testing.T) {
	var lt latencyTracker
	if d := lt.hedgeDelay(25 * time.Millisecond); d != 25*time.Millisecond {
		t.Fatalf("cold hedge delay %v, want the 25ms floor", d)
	}
	for i := 1; i <= 100; i++ {
		lt.observe(time.Duration(i) * time.Millisecond)
	}
	if p := lt.p95(); p < 94*time.Millisecond || p > 97*time.Millisecond {
		t.Fatalf("p95 = %v, want ~95ms", p)
	}
	if d := lt.hedgeDelay(25 * time.Millisecond); d < 94*time.Millisecond {
		t.Fatalf("hedge delay %v ignored the tracked p95", d)
	}
}

// upstream is a controllable fake replica.
type upstream struct {
	srv     *httptest.Server
	healthy atomic.Bool
	status  atomic.Int64 // upscale response status
	delay   atomic.Int64 // per-request sleep, ns
	hits    atomic.Int64 // upscale requests served
	body    atomic.Pointer[string]
}

func newUpstream(t *testing.T, body string) *upstream {
	t.Helper()
	u := &upstream{}
	u.healthy.Store(true)
	u.status.Store(http.StatusOK)
	u.body.Store(&body)
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if !u.healthy.Load() {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/v1/upscale", func(w http.ResponseWriter, r *http.Request) {
		u.hits.Add(1)
		io.Copy(io.Discard, r.Body)
		if d := u.delay.Load(); d > 0 {
			select {
			case <-time.After(time.Duration(d)):
			case <-r.Context().Done():
				return
			}
		}
		code := int(u.status.Load())
		if code != http.StatusOK {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "unavailable", code)
			return
		}
		w.Header().Set("Content-Type", "image/png")
		io.WriteString(w, *u.body.Load())
	})
	u.srv = httptest.NewServer(mux)
	t.Cleanup(u.srv.Close)
	return u
}

// newTestRouter assembles a router over the given upstreams.
func newTestRouter(t *testing.T, cfg Config, ups ...*upstream) (*Router, *Metrics) {
	t.Helper()
	for _, u := range ups {
		cfg.Backends = append(cfg.Backends, u.srv.URL)
	}
	if cfg.Pool.HealthInterval == 0 {
		cfg.Pool.HealthInterval = 10 * time.Millisecond
	}
	reg := trace.NewMetrics()
	rt, err := New(cfg, reg, nil)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(rt.Close)
	return rt, rt.met
}

// post sends one routed upscale and returns the recorder.
func post(rt *Router, path, body string, hdr map[string]string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rr := httptest.NewRecorder()
	rt.ServeHTTP(rr, req)
	return rr
}

// waitFor polls cond until it holds or the deadline expires.
func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRouterProxiesAndContract checks the basic pass-through plus the
// router's own HTTP contract (405+Allow, drain 503+Retry-After).
func TestRouterProxiesAndContract(t *testing.T) {
	up := newUpstream(t, "SRPNG")
	rt, met := newTestRouter(t, Config{}, up)

	rr := post(rt, "/v1/upscale", "img", nil)
	if rr.Code != http.StatusOK || rr.Body.String() != "SRPNG" {
		t.Fatalf("routed response %d %q", rr.Code, rr.Body.String())
	}
	if ct := rr.Header().Get("Content-Type"); ct != "image/png" {
		t.Fatalf("Content-Type %q not passed through", ct)
	}

	req := httptest.NewRequest(http.MethodGet, "/v1/upscale", nil)
	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed || rec.Header().Get("Allow") != "POST" {
		t.Fatalf("GET upscale: %d Allow=%q, want 405 Allow=POST", rec.Code, rec.Header().Get("Allow"))
	}

	// /healthz reflects the fleet; /v1/models proxies.
	rec = httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz %d with a healthy fleet", rec.Code)
	}

	rt.StartDrain()
	rr = post(rt, "/v1/upscale", "img", nil)
	if rr.Code != http.StatusServiceUnavailable || rr.Header().Get("Retry-After") == "" {
		t.Fatalf("draining router: %d Retry-After=%q, want 503 with Retry-After", rr.Code, rr.Header().Get("Retry-After"))
	}
	rec = httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable || rec.Header().Get("Retry-After") == "" {
		t.Fatalf("draining healthz: %d, want 503 with Retry-After", rec.Code)
	}
	if met.Requests.Value() == 0 || met.Responses.Value() == 0 || met.Rejected.Value() == 0 {
		t.Fatalf("metrics not fed: req %d resp %d rej %d",
			met.Requests.Value(), met.Responses.Value(), met.Rejected.Value())
	}
}

// TestRouterHealthEjectReadmit drives the active health loop: a
// draining backend leaves rotation within a poll interval and returns
// only after ReadmitAfter consecutive passes.
func TestRouterHealthEjectReadmit(t *testing.T) {
	up := newUpstream(t, "A")
	rt, met := newTestRouter(t, Config{Pool: PoolConfig{
		HealthInterval: 10 * time.Millisecond,
		ReadmitAfter:   2,
	}}, up)

	b := rt.Pool().Backends()[0]
	waitFor(t, func() bool { return b.Healthy() }, "initial health")

	up.healthy.Store(false)
	waitFor(t, func() bool { return !b.Healthy() }, "ejection")
	if met.Ejections.Value() != 1 {
		t.Fatalf("ejections %d, want 1", met.Ejections.Value())
	}
	// With zero healthy backends the router's own healthz goes 503.
	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("empty-rotation healthz %d, want 503", rec.Code)
	}
	rr := post(rt, "/v1/upscale", "img", nil)
	if rr.Code != http.StatusServiceUnavailable || rr.Header().Get("Retry-After") == "" {
		t.Fatalf("empty-rotation upscale: %d, want 503 with Retry-After", rr.Code)
	}

	up.healthy.Store(true)
	waitFor(t, func() bool { return b.Healthy() }, "readmission")
	if met.Readmits.Value() != 1 {
		t.Fatalf("readmits %d, want 1", met.Readmits.Value())
	}
	if rr := post(rt, "/v1/upscale", "img", nil); rr.Code != http.StatusOK {
		t.Fatalf("post-readmit request %d", rr.Code)
	}
}

// TestRouterRetriesDrainingBackend pins the zero-loss drain property
// at the unit level: a backend answering 503 (drain) is ejected and
// the request replays on another backend, invisibly to the client.
func TestRouterRetriesDrainingBackend(t *testing.T) {
	a := newUpstream(t, "FROM-A")
	b := newUpstream(t, "FROM-B")
	// Long health interval: only the passive (in-request) drain signal
	// can eject, which is exactly what this test pins.
	rt, met := newTestRouter(t, Config{
		Placement: "hash",
		Pool:      PoolConfig{HealthInterval: time.Hour},
	}, a, b)

	// Find a body the ring places on each backend.
	bodyFor := func(idx int) string {
		for i := 0; ; i++ {
			body := fmt.Sprintf("img-%d", i)
			if rt.place.Pick(rt.pool, hashKey("", []byte(body)), nil).Index == idx {
				return body
			}
		}
	}
	bodyA := bodyFor(0)

	a.status.Store(http.StatusServiceUnavailable) // drain begins
	rr := post(rt, "/v1/upscale", bodyA, nil)
	if rr.Code != http.StatusOK || rr.Body.String() != "FROM-B" {
		t.Fatalf("drain retry: %d %q, want 200 FROM-B", rr.Code, rr.Body.String())
	}
	if met.Retries.Value() != 1 {
		t.Fatalf("retries %d, want 1", met.Retries.Value())
	}
	if rt.pool.Backends()[0].Healthy() {
		t.Fatal("draining backend still in rotation after passive 503")
	}
	// Subsequent requests for A's keys go straight to B, no retry.
	if rr := post(rt, "/v1/upscale", bodyA, nil); rr.Code != http.StatusOK || rr.Body.String() != "FROM-B" {
		t.Fatalf("spilled request: %d %q", rr.Code, rr.Body.String())
	}
	if met.Retries.Value() != 1 {
		t.Fatalf("spilled request retried (%d), should have placed on B directly", met.Retries.Value())
	}
}

// TestRouterRetriesKilledBackend: a backend that drops the connection
// (killed replica) is ejected on the transport error and the request
// replays elsewhere.
func TestRouterRetriesKilledBackend(t *testing.T) {
	a := newUpstream(t, "FROM-A")
	b := newUpstream(t, "FROM-B")
	rt, met := newTestRouter(t, Config{
		Placement: "hash",
		Pool:      PoolConfig{HealthInterval: time.Hour},
	}, a, b)

	bodyA := func() string {
		for i := 0; ; i++ {
			body := fmt.Sprintf("img-%d", i)
			if rt.place.Pick(rt.pool, hashKey("", []byte(body)), nil).Index == 0 {
				return body
			}
		}
	}()

	a.srv.CloseClientConnections()
	a.srv.Close() // SIGKILL analogue: connections refused
	rr := post(rt, "/v1/upscale", bodyA, nil)
	if rr.Code != http.StatusOK || rr.Body.String() != "FROM-B" {
		t.Fatalf("kill retry: %d %q, want 200 FROM-B", rr.Code, rr.Body.String())
	}
	if met.Retries.Value() == 0 {
		t.Fatal("no retry counted for the killed backend")
	}
	if rt.pool.Backends()[0].Healthy() {
		t.Fatal("killed backend still in rotation")
	}
}

// TestRouterRateLimit checks the per-client token bucket: the second
// immediate request from one client is 429 with Retry-After while
// another client still passes.
func TestRouterRateLimit(t *testing.T) {
	up := newUpstream(t, "X")
	rt, met := newTestRouter(t, Config{RatePerSec: 0.1, Burst: 1}, up)

	alice := map[string]string{"X-Client-Id": "alice"}
	if rr := post(rt, "/v1/upscale", "img", alice); rr.Code != http.StatusOK {
		t.Fatalf("first request %d", rr.Code)
	}
	rr := post(rt, "/v1/upscale", "img", alice)
	if rr.Code != http.StatusTooManyRequests {
		t.Fatalf("second request %d, want 429", rr.Code)
	}
	if rr.Header().Get("Retry-After") == "" {
		t.Fatal("rate-limit 429 without Retry-After")
	}
	if met.RateLimited.Value() != 1 {
		t.Fatalf("ratelimited %d, want 1", met.RateLimited.Value())
	}
	if rr := post(rt, "/v1/upscale", "img", map[string]string{"X-Client-Id": "bob"}); rr.Code != http.StatusOK {
		t.Fatalf("independent client got %d", rr.Code)
	}
}

// TestRouterAdmissionControl checks fleet saturation: with every
// healthy backend at MaxInflight, new requests shed with 429 +
// Retry-After instead of queueing.
func TestRouterAdmissionControl(t *testing.T) {
	up := newUpstream(t, "X")
	up.delay.Store(int64(time.Hour)) // park in-flight requests
	// Short router timeout: the two parked slot-fillers must unwind
	// before cleanup, or httptest's Close blocks on their handlers.
	rt, met := newTestRouter(t, Config{
		Hedge:   false,
		Timeout: 2 * time.Second,
		Pool:    PoolConfig{MaxInflight: 2, HealthInterval: time.Hour},
	}, up)

	// Occupy both slots.
	for i := 0; i < 2; i++ {
		go post(rt, "/v1/upscale", fmt.Sprintf("img-%d", i), nil)
	}
	waitFor(t, func() bool { return rt.Pool().Backends()[0].Inflight() == 2 }, "slots occupied")

	rr := post(rt, "/v1/upscale", "img-shed", nil)
	if rr.Code != http.StatusTooManyRequests || rr.Header().Get("Retry-After") == "" {
		t.Fatalf("saturated fleet: %d Retry-After=%q, want 429 with Retry-After",
			rr.Code, rr.Header().Get("Retry-After"))
	}
	if met.Sheds.Value() != 1 {
		t.Fatalf("sheds %d, want 1", met.Sheds.Value())
	}
}

// TestRouterHedgeBeatsSlowReplica pins the tail-latency win: a request
// placed on a slow replica is hedged to a fast one after the delay
// floor, the fast response wins, and the slow attempt is cancelled.
func TestRouterHedgeBeatsSlowReplica(t *testing.T) {
	slow := newUpstream(t, "FROM-SLOW")
	fast := newUpstream(t, "FROM-FAST")
	slow.delay.Store(int64(2 * time.Second))
	rt, met := newTestRouter(t, Config{
		Placement:  "hash",
		Hedge:      true,
		HedgeFloor: 20 * time.Millisecond,
		Pool:       PoolConfig{HealthInterval: time.Hour},
	}, slow, fast)

	bodySlow := func() string {
		for i := 0; ; i++ {
			body := fmt.Sprintf("img-%d", i)
			if rt.place.Pick(rt.pool, hashKey("", []byte(body)), nil).Index == 0 {
				return body
			}
		}
	}()

	began := time.Now()
	rr := post(rt, "/v1/upscale", bodySlow, nil)
	took := time.Since(began)
	if rr.Code != http.StatusOK || rr.Body.String() != "FROM-FAST" {
		t.Fatalf("hedged request: %d %q, want 200 FROM-FAST", rr.Code, rr.Body.String())
	}
	if took >= 2*time.Second {
		t.Fatalf("hedged request took %v — waited out the slow replica", took)
	}
	if met.HedgesLaunched.Value() != 1 || met.HedgeWins.Value() != 1 {
		t.Fatalf("hedges launched %d won %d, want 1/1", met.HedgesLaunched.Value(), met.HedgeWins.Value())
	}
	// The hedge won, so nothing was wasted: launched = won + wasted.
	if met.HedgeWasted.Value() != 0 {
		t.Fatalf("hedge wasted %d, want 0 (the hedge won)", met.HedgeWasted.Value())
	}
	// The cancelled slow attempt must release its slot.
	waitFor(t, func() bool { return rt.Pool().Backends()[0].Inflight() == 0 }, "slow slot released")
}
