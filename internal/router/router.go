// Package router is the fleet layer of the serving stack: a reverse
// proxy that fans /v1/upscale traffic across N sr-serve replicas. One
// internal/serve process is the scaling unit — the paper's thesis is
// that SR throughput comes from scaling out, not from one fast worker,
// and this is the serving-side analogue of its multi-node training
// runs.
//
// The router composes five mechanisms, each independently testable:
//
//   - Pool: a health-checked backend set. Each replica's /healthz is
//     polled; a failing or draining (503) probe ejects it from
//     rotation, consecutive passes re-admit it. The proxy also ejects
//     passively on transport errors and drain 503s, so reaction to a
//     killed replica is bounded by the in-flight request, not the poll
//     interval.
//   - Placement: consistent hashing on the request content key (repeat
//     traffic for a scene lands on the replica that already cached its
//     result) or least-loaded by in-flight count (best tail latency
//     under heterogeneous load).
//   - Limiter: per-client token buckets; a denied request gets 429
//     with Retry-After set to the time until its next token.
//   - Admission control: bounded in-flight per backend. When every
//     healthy backend is at its cap the router sheds with 429 +
//     Retry-After instead of queueing unboundedly.
//   - Hedged retries: upscales are pure functions of their body, so a
//     request stuck on a slow replica is hedged to a second one after
//     a p95-tracking delay; the first response wins and the loser is
//     cancelled. Bodies are buffered under a size cap, so retries and
//     hedges replay the identical bytes.
//
// Drain integration: a replica that calls serve.Server.StartDrain
// flips its /healthz to 503 and answers in-flight-era upscales with
// 503 + Retry-After. The router treats both as the drain signal —
// eject, retry elsewhere — so a rolling restart with a lame-duck delay
// (sr-serve -drain-grace) loses zero requests.
package router

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/trace"
	rtrace "repro/internal/trace/request"
)

// statusClientClosedRequest is the conventional (nginx) status for a
// request abandoned by its client; it only feeds metrics.
const statusClientClosedRequest = 499

// DefaultMaxBodyBytes caps a buffered upload, mirroring the replicas'
// own limit (16 MB): the router must hold the body for replay, so it
// enforces the cap before placement.
const DefaultMaxBodyBytes = 16 << 20

// DefaultMaxRespBytes caps a buffered backend response (64 MB covers a
// 16 MB upload at scale 2× with PNG overhead). Buffering the response
// is what lets the router retry a replica killed mid-reply without the
// client ever seeing a broken body.
const DefaultMaxRespBytes = 64 << 20

// Config assembles the router.
type Config struct {
	// Backends are the replica base URLs (http://host:port).
	Backends []string
	// Placement selects the strategy: "least-loaded" (default) or
	// "hash".
	Placement string
	// Pool tunes health checking and per-backend admission.
	Pool PoolConfig
	// RatePerSec and Burst configure the per-client token bucket;
	// RatePerSec <= 0 disables rate limiting.
	RatePerSec float64
	Burst      float64
	// MaxBody caps a buffered request body (default 16 MB);
	// MaxRespBytes caps a buffered backend response (default 64 MB).
	MaxBody      int64
	MaxRespBytes int64
	// Hedge enables hedged retries; HedgeFloor is the minimum hedge
	// delay (default 25ms), raised to the tracked p95 as samples
	// accumulate. Hedging needs at least two backends.
	Hedge      bool
	HedgeFloor time.Duration
	// Timeout bounds one proxy attempt end to end (default 120s).
	Timeout time.Duration
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Placement == "" {
		c.Placement = "least-loaded"
	}
	if c.MaxBody <= 0 {
		c.MaxBody = DefaultMaxBodyBytes
	}
	if c.MaxRespBytes <= 0 {
		c.MaxRespBytes = DefaultMaxRespBytes
	}
	if c.HedgeFloor <= 0 {
		c.HedgeFloor = 25 * time.Millisecond
	}
	if c.Timeout <= 0 {
		c.Timeout = 120 * time.Second
	}
	return c
}

// Router is the fleet front end: an http.Handler exposing /v1/upscale
// (routed), /v1/models (proxied), /healthz (fleet health), and
// /metrics (the router's own sr_router_* instruments).
type Router struct {
	cfg     Config
	pool    *Pool
	place   Placement
	limiter *Limiter
	lat     *latencyTracker
	client  *http.Client
	met     *Metrics
	rec     *trace.Recorder
	traces  *rtrace.Store
	mux     *http.ServeMux

	draining atomic.Bool
}

// New builds a router over cfg.Backends, probing each synchronously
// and starting the health loops. reg and rec may be nil (metrics and
// tracing off). Callers must Close the router to stop the health
// loops.
func New(cfg Config, reg *trace.Metrics, rec *trace.Recorder) (*Router, error) {
	cfg = cfg.withDefaults()
	met := NewMetrics(reg, len(cfg.Backends))
	pool, err := NewPool(cfg.Backends, cfg.Pool, met)
	if err != nil {
		return nil, err
	}
	place, err := NewPlacement(cfg.Placement, pool.Backends())
	if err != nil {
		return nil, err
	}
	rt := &Router{
		cfg:     cfg,
		pool:    pool,
		place:   place,
		limiter: NewLimiter(cfg.RatePerSec, cfg.Burst),
		lat:     &latencyTracker{},
		client: &http.Client{
			Timeout: cfg.Timeout,
			Transport: &http.Transport{
				MaxIdleConnsPerHost: pool.cfg.MaxInflight + 2,
			},
		},
		met:    met,
		rec:    rec,
		traces: rtrace.NewStore(rtrace.Config{}),
		mux:    http.NewServeMux(),
	}
	rt.mux.HandleFunc("/v1/upscale", rt.handleUpscale)
	rt.mux.HandleFunc("/v1/models", rt.handleModels)
	rt.mux.HandleFunc("/healthz", rt.handleHealth)
	rt.mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, r *http.Request) {
		rt.traces.Handler().ServeHTTP(w, r)
	})
	if reg != nil {
		rt.mux.Handle("/metrics", reg.Handler())
	}
	pool.Start()
	return rt, nil
}

// SetTraceStore replaces the request-trace store (configure sampling
// knobs before serving traffic).
func (rt *Router) SetTraceStore(st *rtrace.Store) {
	if st != nil {
		rt.traces = st
	}
}

// TraceStore returns the router's request-trace store.
func (rt *Router) TraceStore() *rtrace.Store { return rt.traces }

// ServeHTTP implements http.Handler.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) { rt.mux.ServeHTTP(w, r) }

// Pool exposes the backend pool for introspection (tests, benches).
func (rt *Router) Pool() *Pool { return rt.pool }

// Metrics exposes the router's instrument bundle for introspection
// (tests, benches).
func (rt *Router) Metrics() *Metrics { return rt.met }

// StartDrain flips the router into draining mode: its own /healthz
// reports 503 and new routed requests are rejected, while requests
// already being proxied finish normally.
func (rt *Router) StartDrain() { rt.draining.Store(true) }

// Draining reports whether StartDrain was called.
func (rt *Router) Draining() bool { return rt.draining.Load() }

// Close stops the health loops and releases idle connections.
func (rt *Router) Close() {
	rt.pool.Close()
	rt.client.CloseIdleConnections()
}

// fail writes a plain-text error and records the outcome, mirroring
// the replica-side contract: 429 and 503 both carry Retry-After so
// callers back off instead of hot-retrying.
func (rt *Router) fail(w http.ResponseWriter, code int, msg string) {
	rt.met.outcome(code)
	switch code {
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		if w.Header().Get("Retry-After") == "" {
			w.Header().Set("Retry-After", "1")
		}
	}
	http.Error(w, msg, code)
}

// clientKey identifies a client for rate limiting: an explicit
// X-Client-Id header when present (trusted deployments, tests), else
// the connection's remote host.
func clientKey(r *http.Request) string {
	if id := r.Header.Get("X-Client-Id"); id != "" {
		return id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// Routing failures distinct from a backend's own response.
var (
	// errNoHealthy: the rotation is empty (every backend ejected).
	errNoHealthy = errors.New("router: no healthy backends")
	// errSaturated: healthy backends exist but all are at MaxInflight.
	errSaturated = errors.New("router: fleet saturated")
)

// handleUpscale is POST /v1/upscale: admission, placement, proxy with
// retries and hedging, response copy-out. The router is the fleet edge,
// so this is where the request's trace is minted (or adopted from an
// incoming traceparent), returned as X-Trace-Id, and tail-sampled.
func (rt *Router) handleUpscale(w http.ResponseWriter, r *http.Request) {
	rt.met.request()
	a := rt.traces.Start(r.Header.Get("traceparent"))
	began := time.Now()
	if a != nil {
		w.Header().Set("X-Trace-Id", a.TraceID().String())
	}
	status := rt.doUpscale(w, r, a)
	if id, kept := rt.traces.Finish(a, status); kept {
		rt.met.proxyExemplar(time.Since(began).Seconds(), id.String())
	}
}

// emitTiled closes one tiled stage span [from, now) as a child of the
// root and returns its end — the next stage's start. Returns 0 (and
// records nothing) for an untraced request.
func emitTiled(a *rtrace.Active, stage rtrace.Stage, from, bytes int64) int64 {
	if a == nil {
		return 0
	}
	now := a.Now()
	a.Emit(stage, rtrace.NewSpanID(), a.Root(), from, now, bytes, 0, -1, 0)
	return now
}

// doUpscale runs the routed exchange and returns the HTTP status it
// accounted for (499 when the client vanished mid-route).
func (rt *Router) doUpscale(w http.ResponseWriter, r *http.Request, a *rtrace.Active) int {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		rt.fail(w, http.StatusMethodNotAllowed, "POST a PNG body")
		return http.StatusMethodNotAllowed
	}
	if rt.draining.Load() {
		rt.fail(w, http.StatusServiceUnavailable, "router draining")
		return http.StatusServiceUnavailable
	}
	// Stage spans tile: each starts where the previous ended (the first
	// at t=0), so dispatch overhead between stages is attributed to the
	// stage that follows it rather than silently unaccounted — the
	// attribution view can then explain ~all of a request's wall time.
	cur := a.T0()
	ok, wait := rt.limiter.Allow(clientKey(r))
	cur = emitTiled(a, rtrace.StageRouterLimiter, cur, 0)
	if !ok {
		secs := int(wait/time.Second) + 1
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		rt.met.RateLimited.Inc()
		rt.fail(w, http.StatusTooManyRequests, "rate limit exceeded")
		return http.StatusTooManyRequests
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rt.cfg.MaxBody))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			rt.fail(w, http.StatusRequestEntityTooLarge, fmt.Sprintf("body over %d bytes", rt.cfg.MaxBody))
			return http.StatusRequestEntityTooLarge
		}
		rt.fail(w, http.StatusBadRequest, "reading body: "+err.Error())
		return http.StatusBadRequest
	}
	cur = emitTiled(a, rtrace.StageRouterReadBody, cur, int64(len(body)))
	model := r.URL.Query().Get("model")

	began := time.Now()
	start := rt.rec.Now()
	res, err := rt.route(r.Context(), a, model, body, cur)
	switch {
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// Client gone mid-route: nothing to write, account like the
		// replicas do (nginx's 499).
		rt.met.outcome(statusClientClosedRequest)
		return statusClientClosedRequest
	case errors.Is(err, errNoHealthy):
		rt.fail(w, http.StatusServiceUnavailable, err.Error())
		return http.StatusServiceUnavailable
	case errors.Is(err, errSaturated):
		rt.met.Sheds.Inc()
		rt.fail(w, http.StatusTooManyRequests, err.Error())
		return http.StatusTooManyRequests
	case err != nil:
		rt.fail(w, http.StatusBadGateway, "all attempts failed: "+err.Error())
		return http.StatusBadGateway
	}
	// Pass the backend's response through, whatever it was: the router
	// is transparent for statuses it does not itself produce.
	for _, h := range []string{"Content-Type", "Retry-After", "Allow"} {
		if v := res.header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	rt.met.outcome(res.status)
	// The write span picks up where the winning attempt span closed, so
	// header copy-out and the response write tile with the attempts.
	wstart := res.closed
	if wstart == 0 {
		wstart = a.Now()
	}
	w.WriteHeader(res.status)
	w.Write(res.body)
	a.EmitStage(rtrace.StageRouterWrite, a.Root(), wstart, int64(len(res.body)))
	rt.rec.Emit(trace.CatRouterProxy, trace.TrackMain, start, int64(len(res.body)))
	rt.met.observeProxy(time.Since(began))
	return res.status
}

// backendResult is one completed proxy attempt.
type backendResult struct {
	backend *Backend
	attempt int // index into route's attempt table
	status  int
	header  http.Header
	body    []byte
	dur     time.Duration
	hedged  bool
	closed  int64 // span-clock time the winning attempt span closed
	err     error // transport-level failure (no HTTP response)
}

// retryable reports whether the attempt should be replayed on another
// backend: transport errors (replica killed), 503 (replica draining),
// and 429 (replica saturated — another may have room). The body was
// buffered, so replay is exact.
func (r *backendResult) retryable() bool {
	return r.err != nil || r.status == http.StatusServiceUnavailable || r.status == http.StatusTooManyRequests
}

// route proxies one upscale across the fleet: place, attempt, and on
// retryable failure or hedge timeout, attempt again on a backend not
// yet tried. The first acceptable response wins; other in-flight
// attempts are cancelled. Returns errNoHealthy/errSaturated when no
// attempt could even be placed, or the last transport error when every
// placed attempt failed without an HTTP response.
func (rt *Router) route(ctx context.Context, a *rtrace.Active, model string, body []byte, cur int64) (*backendResult, error) {
	key := hashKey(model, body)
	tried := make(map[*Backend]bool, 2)
	// Buffered to the fleet size so straggler attempts never block
	// sending their (discarded) results after the winner returns.
	results := make(chan *backendResult, len(rt.pool.Backends()))
	var cancels []context.CancelFunc
	defer func() {
		for _, c := range cancels {
			c()
		}
	}()

	// attState tracks one launched attempt's span: attempt spans are
	// minted here (their IDs travel to the replica in traceparent, so
	// the replica's whole tree parents under the attempt that carried
	// it) and emitted on this goroutine when the attempt resolves —
	// losers as cancelled in the defer below, never silently absent.
	type attState struct {
		id     uint64
		bidx   int16
		start  int64
		hedged bool
		open   bool
	}
	var atts []attState
	winner := -1
	closeAttempt := func(i int, flags uint8, status int) int64 {
		at := &atts[i]
		if !at.open {
			return 0
		}
		at.open = false
		if at.hedged {
			flags |= rtrace.FlagHedge
		}
		end := a.Now()
		a.Emit(rtrace.StageRouterAttempt, at.id, a.Root(), at.start, end, 0, flags, at.bidx, int32(status))
		return end
	}
	defer func() {
		for i := range atts {
			if atts[i].open {
				closeAttempt(i, rtrace.FlagCancelled, 0)
			}
			if atts[i].hedged && i != winner {
				rt.met.HedgeWasted.Inc()
			}
		}
	}()

	// launch places and dispatches one attempt. The placement span tiles
	// from cur (the previous stage's end at first launch, the failed
	// attempt's close on retries) and the attempt span tiles from the
	// placement span's end, so route-internal bookkeeping stays
	// attributed.
	launch := func(hedged bool) bool {
		pstart := cur
		if pstart == 0 {
			pstart = a.Now()
		}
		b := rt.place.Pick(rt.pool, key, tried)
		if b == nil {
			return false
		}
		cur = emitTiled(a, rtrace.StageRouterPlacement, pstart, 0)
		tried[b] = true
		rt.pool.acquire(b)
		rt.met.attempt(b.Index)
		actx, cancel := context.WithCancel(ctx)
		cancels = append(cancels, cancel)
		idx := len(atts)
		atts = append(atts, attState{
			id: rtrace.NewSpanID(), bidx: int16(b.Index),
			start: cur, hedged: hedged, open: true,
		})
		tp := a.Traceparent(atts[idx].id)
		go func() {
			defer rt.pool.release(b)
			res := rt.attempt(actx, b, tp, model, body)
			res.hedged = hedged
			res.attempt = idx
			results <- res
		}()
		return true
	}

	if !launch(false) {
		if rt.pool.NumHealthy() == 0 {
			return nil, errNoHealthy
		}
		return nil, errSaturated
	}

	// One hedge per request, armed only when a second backend could
	// take it. The timer tracks the fleet's p95 so hedges target the
	// tail, not the median.
	var hedgeC <-chan time.Time
	if rt.cfg.Hedge && len(rt.pool.Backends()) > 1 {
		t := time.NewTimer(rt.lat.hedgeDelay(rt.cfg.HedgeFloor))
		defer t.Stop()
		hedgeC = t.C
	}

	pending := 1
	var lastErr error
	for pending > 0 {
		select {
		case res := <-results:
			pending--
			if res.err != nil {
				// No HTTP response: the replica is gone (killed, reset).
				// Eject so placement stops offering it before the next
				// health probe.
				rt.pool.eject(res.backend)
				lastErr = res.err
				cur = closeAttempt(res.attempt, rtrace.FlagError, 0)
			} else if res.status == http.StatusServiceUnavailable {
				// Drain signal: out of rotation until its healthz
				// passes again post-restart.
				rt.pool.eject(res.backend)
			}
			if res.retryable() {
				if res.err == nil {
					cur = closeAttempt(res.attempt, rtrace.FlagError, res.status)
				}
				if launch(false) {
					rt.met.Retries.Inc()
					// A replayed request is always worth retaining: the
					// trace is the forensic record of what the retry
					// recovered from.
					a.ForceKeep()
					pending++
					continue
				}
				if pending > 0 {
					continue // a hedge may still answer
				}
				if res.err != nil {
					return nil, lastErr
				}
				return res, nil // pass the terminal 429/503 through
			}
			rt.lat.observe(res.dur)
			winner = res.attempt
			res.closed = closeAttempt(res.attempt, rtrace.FlagWinner, res.status)
			if res.hedged {
				rt.met.HedgeWins.Inc()
			}
			return res, nil
		case <-hedgeC:
			hedgeC = nil
			cur = 0 // hedge placement starts at its own now, not the last stage end
			if launch(true) {
				rt.met.HedgesLaunched.Inc()
				pending++
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if lastErr == nil {
		lastErr = errors.New("router: no attempt completed")
	}
	return nil, lastErr
}

// attempt performs one full proxied exchange against b: POST the
// buffered body, read the capped response. The response is consumed
// entirely here so a replica killed mid-reply surfaces as a retryable
// transport error instead of a broken body half-written to the client.
func (rt *Router) attempt(ctx context.Context, b *Backend, traceparent, model string, body []byte) *backendResult {
	began := time.Now()
	u := *b.URL
	u.Path = "/v1/upscale"
	if model != "" {
		u.RawQuery = "model=" + url.QueryEscape(model)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u.String(), bytes.NewReader(body))
	if err != nil {
		return &backendResult{backend: b, err: err}
	}
	req.Header.Set("Content-Type", "image/png")
	if traceparent != "" {
		// The attempt's span ID is the parent: the replica's whole span
		// tree hangs off the attempt that carried it, including replays
		// after a SIGKILL — same trace ID, new attempt span.
		req.Header.Set("traceparent", traceparent)
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return &backendResult{backend: b, err: err}
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, rt.cfg.MaxRespBytes+1))
	if err != nil {
		return &backendResult{backend: b, err: err}
	}
	if int64(len(data)) > rt.cfg.MaxRespBytes {
		return &backendResult{backend: b, err: fmt.Errorf("response over %d bytes", rt.cfg.MaxRespBytes)}
	}
	return &backendResult{
		backend: b,
		status:  resp.StatusCode,
		header:  resp.Header.Clone(),
		body:    data,
		dur:     time.Since(began),
	}
}

// handleModels is GET /v1/models, proxied to the first healthy backend
// that answers — every replica serves the same registry, so any one
// speaks for the fleet.
func (rt *Router) handleModels(w http.ResponseWriter, r *http.Request) {
	rt.met.request()
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		rt.fail(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	for _, b := range rt.pool.Backends() {
		if !b.Healthy() {
			continue
		}
		resp, err := rt.client.Get(b.URL.JoinPath("/v1/models").String())
		if err != nil {
			rt.pool.eject(b)
			continue
		}
		data, err := io.ReadAll(io.LimitReader(resp.Body, rt.cfg.MaxRespBytes))
		resp.Body.Close()
		if err != nil {
			continue
		}
		if ct := resp.Header.Get("Content-Type"); ct != "" {
			w.Header().Set("Content-Type", ct)
		}
		rt.met.outcome(resp.StatusCode)
		w.WriteHeader(resp.StatusCode)
		w.Write(data)
		return
	}
	rt.fail(w, http.StatusServiceUnavailable, errNoHealthy.Error())
}

// handleHealth is GET /healthz: 200 while at least one backend is in
// rotation, 503 (with Retry-After) while draining or with an empty
// rotation — the same contract the replicas expose, so routers stack.
func (rt *Router) handleHealth(w http.ResponseWriter, _ *http.Request) {
	rt.met.request()
	if rt.draining.Load() {
		rt.fail(w, http.StatusServiceUnavailable, "draining")
		return
	}
	if n := rt.pool.NumHealthy(); n == 0 {
		rt.fail(w, http.StatusServiceUnavailable, errNoHealthy.Error())
		return
	}
	fmt.Fprintln(w, "ok")
	rt.met.outcome(http.StatusOK)
}
