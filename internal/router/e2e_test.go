package router

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/imageio"
	"repro/internal/serve"
	"repro/internal/tensor"
	"repro/internal/trace"
)

// replica is one real sr-serve instance (engine + HTTP server) bound
// to a TCP port, restartable on the same address.
type replica struct {
	addr   string
	engine *serve.Engine
	srv    *serve.Server
	http   *http.Server
	done   chan struct{}
}

// startReplica binds addr ("127.0.0.1:0" for a fresh port) and serves
// the bicubic model on it.
func startReplica(t *testing.T, addr string) *replica {
	t.Helper()
	engine := serve.NewEngine(serve.EngineConfig{
		Batch:    serve.BatcherConfig{MaxBatch: 4, MaxDelay: 200 * time.Microsecond, Queue: 256, Workers: 1},
		TileSize: 32,
	}, nil, nil)
	if err := engine.Register("bicubic", serve.BicubicFactory(2, 3)); err != nil {
		t.Fatalf("register: %v", err)
	}
	srv := serve.NewServer(engine, nil, nil, 0)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("listen %s: %v", addr, err)
	}
	rep := &replica{
		addr:   ln.Addr().String(),
		engine: engine,
		srv:    srv,
		http:   &http.Server{Handler: srv},
		done:   make(chan struct{}),
	}
	go func() {
		rep.http.Serve(ln)
		close(rep.done)
	}()
	return rep
}

// drain performs the sr-serve rolling-restart sequence: healthz flips
// to 503, a lame-duck window passes, then the listener closes and the
// engine runs dry.
func (r *replica) drain(grace time.Duration) {
	r.srv.StartDrain()
	time.Sleep(grace)
	r.http.Close()
	<-r.done
	r.engine.Shutdown()
}

// kill is the SIGKILL analogue: the listener and all connections drop
// with no drain and no grace.
func (r *replica) kill() {
	r.http.Close()
	<-r.done
}

// TestRouterZeroLossRollingRestart is the headline e2e scenario: three
// real serve replicas behind the router, continuous client load, and
// mid-stream one replica is drained + restarted (rolling restart) and
// another is killed outright + restarted. Every client request must
// succeed with a byte-correct upscale; the only acceptable evidence of
// the churn is the router's ejection/readmission counters.
func TestRouterZeroLossRollingRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-replica e2e in -short mode")
	}

	// A few distinct source images with precomputed expected outputs, so
	// correctness is checked end to end (any replica must produce the
	// identical bicubic result).
	rng := tensor.NewRNG(7)
	type testImg struct{ req, want []byte }
	imgs := make([]testImg, 4)
	for i := range imgs {
		x := tensor.New(1, 3, 10+i, 9+i)
		x.FillUniform(rng, 0, 1)
		var req bytes.Buffer
		if err := imageio.WritePNG(&req, x); err != nil {
			t.Fatal(err)
		}
		imgs[i].req = req.Bytes()
	}

	reps := make([]*replica, 3)
	var urls []string
	for i := range reps {
		reps[i] = startReplica(t, "127.0.0.1:0")
		urls = append(urls, "http://"+reps[i].addr)
	}
	defer func() {
		for _, r := range reps {
			r.http.Close()
		}
	}()

	reg := trace.NewMetrics()
	rt, err := New(Config{
		Backends:  urls,
		Placement: "least-loaded",
		Pool: PoolConfig{
			HealthInterval: 15 * time.Millisecond,
			ReadmitAfter:   2,
		},
	}, reg, nil)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer rt.Close()
	met := rt.met

	// Golden outputs via the router while the fleet is quiet.
	routed := func(body []byte) (int, []byte, error) {
		resp, err := http.Post("http://"+routerAddr(t, rt)+"/v1/upscale?model=bicubic",
			"image/png", bytes.NewReader(body))
		if err != nil {
			return 0, nil, err
		}
		defer resp.Body.Close()
		out, err := io.ReadAll(resp.Body)
		return resp.StatusCode, out, err
	}
	for i := range imgs {
		code, out, err := routed(imgs[i].req)
		if err != nil || code != http.StatusOK {
			t.Fatalf("golden request %d: code=%d err=%v", i, code, err)
		}
		imgs[i].want = out
	}

	// Continuous load: 4 clients, each hammering its own image.
	var failures atomic.Int64
	var successes atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(img testImg, id int) {
			defer wg.Done()
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				code, out, err := routed(img.req)
				if err != nil || code != http.StatusOK {
					failures.Add(1)
					t.Errorf("client %d req %d failed: code=%d err=%v", id, n, code, err)
					return
				}
				if !bytes.Equal(out, img.want) {
					failures.Add(1)
					t.Errorf("client %d req %d: wrong bytes (%d vs %d)", id, n, len(out), len(img.want))
					return
				}
				successes.Add(1)
			}
		}(imgs[c], c)
	}

	waitHealthy := func(n int) {
		waitFor(t, func() bool { return rt.Pool().NumHealthy() == n },
			fmt.Sprintf("%d healthy backends", n))
	}
	waitHealthy(3)

	// Phase 1: rolling restart of replica 1 — drain with a lame-duck
	// window longer than the health interval, restart on the same port.
	time.Sleep(50 * time.Millisecond) // let load establish
	reps[1].drain(60 * time.Millisecond)
	waitHealthy(2)
	reps[1] = startReplica(t, reps[1].addr)
	waitHealthy(3)

	// Phase 2: kill replica 2 outright (no drain), restart it.
	time.Sleep(50 * time.Millisecond)
	reps[2].kill()
	waitHealthy(2)
	reps[2] = startReplica(t, reps[2].addr)
	waitHealthy(3)

	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()

	if f := failures.Load(); f != 0 {
		t.Fatalf("%d client requests failed across the rolling restart", f)
	}
	if s := successes.Load(); s < 20 {
		t.Fatalf("only %d successful requests — load never established", s)
	}
	if met.Ejections.Value() < 2 {
		t.Fatalf("ejections %d, want >=2 (one drain, one kill)", met.Ejections.Value())
	}
	if met.Readmits.Value() < 2 {
		t.Fatalf("readmits %d, want >=2", met.Readmits.Value())
	}
	t.Logf("zero-loss: %d requests ok, %d retries, %d ejections, %d readmits",
		successes.Load(), met.Retries.Value(), met.Ejections.Value(), met.Readmits.Value())
}

// routerListener caches one real listener per Router for e2e clients.
var (
	routerLnMu sync.Mutex
	routerLns  = map[*Router]string{}
)

// routerAddr serves rt on a real TCP port (once) and returns the
// address, so e2e clients exercise the full HTTP stack rather than
// httptest recorders.
func routerAddr(t *testing.T, rt *Router) string {
	t.Helper()
	routerLnMu.Lock()
	defer routerLnMu.Unlock()
	if addr, ok := routerLns[rt]; ok {
		return addr
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv := &http.Server{Handler: rt}
	go srv.Serve(ln)
	t.Cleanup(func() {
		srv.Close()
		routerLnMu.Lock()
		delete(routerLns, rt)
		routerLnMu.Unlock()
	})
	routerLns[rt] = ln.Addr().String()
	return routerLns[rt]
}
