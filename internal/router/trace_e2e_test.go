package router

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/imageio"
	"repro/internal/serve"
	"repro/internal/tensor"
	"repro/internal/trace"
	rtrace "repro/internal/trace/request"
)

// TestTracePropagationE2E drives one request through a real router →
// real sr-serve replica and asserts the result is a single connected
// span tree: the replica adopts the router's trace ID from the
// traceparent header, its root parents under the router's attempt span,
// and every recorded span's parent resolves inside the merged tree —
// no orphans, no second tree. Run with -race, this also shakes the
// lock-free collector across the router's and replica's goroutines.
func TestTracePropagationE2E(t *testing.T) {
	// Real replica: bicubic model behind a real serve.Server + listener,
	// keeping every trace so the assertion is deterministic.
	engine := serve.NewEngine(serve.EngineConfig{
		Batch: serve.BatcherConfig{MaxBatch: 2, MaxDelay: time.Millisecond},
	}, nil, nil)
	if err := engine.Register("bicubic", serve.BicubicFactory(2, 3)); err != nil {
		t.Fatalf("Register: %v", err)
	}
	t.Cleanup(engine.Shutdown)
	replica := serve.NewServer(engine, nil, nil, 0)
	replicaStore := rtrace.NewStore(rtrace.Config{Capacity: 8, SampleRate: 1})
	replica.SetTraceStore(replicaStore)
	backend := httptest.NewServer(replica)
	t.Cleanup(backend.Close)

	reg := trace.NewMetrics()
	rt, err := New(Config{
		Backends: []string{backend.URL},
		Pool:     PoolConfig{HealthInterval: 10 * time.Millisecond},
	}, reg, nil)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(rt.Close)
	routerStore := rtrace.NewStore(rtrace.Config{Capacity: 8, SampleRate: 1})
	rt.SetTraceStore(routerStore)
	waitFor(t, func() bool { return rt.Pool().NumHealthy() == 1 }, "replica in rotation")

	x := tensor.New(1, 3, 8, 8)
	x.FillUniform(tensor.NewRNG(7), 0, 1)
	var png bytes.Buffer
	if err := imageio.WritePNG(&png, x); err != nil {
		t.Fatalf("WritePNG: %v", err)
	}

	rr := post(rt, "/v1/upscale?model=bicubic", png.String(), nil)
	if rr.Code != http.StatusOK {
		t.Fatalf("routed upscale: %d %s", rr.Code, rr.Body.String())
	}
	traceID := rr.Header().Get("X-Trace-Id")
	if traceID == "" {
		t.Fatal("router response missing X-Trace-Id")
	}

	// Both stores kept the request (SampleRate 1) under the same ID.
	routerTraces, replicaTraces := routerStore.Retained(), replicaStore.Retained()
	if len(routerTraces) != 1 || len(replicaTraces) != 1 {
		t.Fatalf("retained router=%d replica=%d traces, want 1 and 1",
			len(routerTraces), len(replicaTraces))
	}
	rtr, rep := routerTraces[0], replicaTraces[0]
	if rtr.ID.String() != traceID || rep.ID != rtr.ID {
		t.Fatalf("trace IDs disagree: header=%s router=%s replica=%s", traceID, rtr.ID, rep.ID)
	}
	if rtr.RemoteParent != 0 {
		t.Fatalf("router root has remote parent %x — the router is the edge", rtr.RemoteParent)
	}
	if rep.RemoteParent == 0 {
		t.Fatal("replica root has no remote parent — traceparent not propagated")
	}

	// Merge both processes' spans and check the tree is connected:
	// exactly one root (parent 0), every other parent resolves.
	ids := map[uint64]bool{}
	all := append(append([]rtrace.SpanRec{}, rtr.Spans...), rep.Spans...)
	for _, sp := range all {
		if sp.ID == 0 {
			t.Fatalf("span with zero ID: %+v", sp)
		}
		if ids[sp.ID] {
			t.Fatalf("span ID %x appears twice in the merged tree", sp.ID)
		}
		ids[sp.ID] = true
	}
	roots, attempts := 0, 0
	for _, sp := range all {
		if sp.Parent == 0 {
			roots++
			continue
		}
		if !ids[sp.Parent] {
			t.Fatalf("orphan span: stage %s parent %x not in the merged tree", sp.Stage, sp.Parent)
		}
		if sp.Stage == rtrace.StageRouterAttempt {
			attempts++
			if sp.Flags&rtrace.FlagWinner == 0 {
				t.Fatalf("single uncontended attempt not marked winner: %+v", sp)
			}
		}
	}
	if roots != 1 {
		t.Fatalf("merged tree has %d roots, want exactly 1 (the router's)", roots)
	}
	if attempts != 1 {
		t.Fatalf("merged tree has %d attempt spans, want 1", attempts)
	}
	// The replica's root must hang off the router's attempt span
	// specifically, not just any span.
	var attemptID uint64
	for _, sp := range rtr.Spans {
		if sp.Stage == rtrace.StageRouterAttempt {
			attemptID = sp.ID
		}
	}
	if rep.RemoteParent != attemptID {
		t.Fatalf("replica root parents under %x, want the router attempt span %x",
			rep.RemoteParent, attemptID)
	}
	// The replica recorded real serving stages, not just a bare root.
	stages := map[rtrace.Stage]bool{}
	for _, sp := range rep.Spans {
		stages[sp.Stage] = true
	}
	for _, want := range []rtrace.Stage{rtrace.StageServeDecode, rtrace.StageServeForward, rtrace.StageServeEncode} {
		if !stages[want] {
			t.Fatalf("replica trace missing stage %s (got %v)", want, stages)
		}
	}
}
