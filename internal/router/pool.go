package router

import (
	"fmt"
	"net/http"
	"net/url"
	"sync"
	"sync/atomic"
	"time"
)

// Backend is one sr-serve replica in the pool. Health and load are
// atomics so the proxy hot path reads them lock-free; the health loop
// owns the readmission streak.
type Backend struct {
	// URL is the replica's base URL (scheme + host, no path).
	URL *url.URL
	// Index is the backend's position in the configured list; it names
	// the per-backend metrics (sr_router_backend_*_<index>) and breaks
	// placement ties deterministically.
	Index int

	healthy  atomic.Bool
	inflight atomic.Int64
}

// Healthy reports whether the backend is in rotation.
func (b *Backend) Healthy() bool { return b.healthy.Load() }

// Inflight returns the number of proxied requests currently against
// this backend (hedged attempts count individually — they occupy a
// replica slot each).
func (b *Backend) Inflight() int64 { return b.inflight.Load() }

// PoolConfig tunes health checking and per-backend admission.
type PoolConfig struct {
	// HealthInterval is the /healthz poll period (default 250ms). The
	// drain window a rolling restart must wait out is one interval plus
	// the health timeout.
	HealthInterval time.Duration
	// HealthTimeout bounds one health probe (default 1s).
	HealthTimeout time.Duration
	// ReadmitAfter is how many consecutive probe passes an ejected
	// backend needs before re-entering rotation (default 2) — one pass
	// can race a flapping restart.
	ReadmitAfter int
	// MaxInflight caps concurrently proxied requests per backend
	// (default 32). A backend at the cap is ineligible for placement;
	// when every healthy backend is at the cap the router sheds with
	// 429 + Retry-After.
	MaxInflight int
}

// withDefaults fills unset fields.
func (c PoolConfig) withDefaults() PoolConfig {
	if c.HealthInterval <= 0 {
		c.HealthInterval = 250 * time.Millisecond
	}
	if c.HealthTimeout <= 0 {
		c.HealthTimeout = time.Second
	}
	if c.ReadmitAfter < 1 {
		c.ReadmitAfter = 2
	}
	if c.MaxInflight < 1 {
		c.MaxInflight = 32
	}
	return c
}

// Pool is the health-checked backend set. One goroutine per backend
// polls /healthz: a failing or draining (non-200) probe ejects the
// backend from rotation, ReadmitAfter consecutive passes re-admit it.
// The proxy also ejects passively on transport errors and backend
// drain 503s, so reaction to a killed or draining replica is bounded
// by the in-flight request, not the poll interval.
type Pool struct {
	cfg      PoolConfig
	backends []*Backend
	client   *http.Client
	met      *Metrics

	stop chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

// NewPool parses the backend URLs and probes each one synchronously so
// the router starts with an accurate rotation. met may be nil.
func NewPool(urls []string, cfg PoolConfig, met *Metrics) (*Pool, error) {
	cfg = cfg.withDefaults()
	if len(urls) == 0 {
		return nil, fmt.Errorf("router: no backends configured")
	}
	p := &Pool{
		cfg:    cfg,
		client: &http.Client{Timeout: cfg.HealthTimeout},
		met:    met,
		stop:   make(chan struct{}),
	}
	for i, raw := range urls {
		u, err := url.Parse(raw)
		if err != nil {
			return nil, fmt.Errorf("router: backend %q: %w", raw, err)
		}
		if u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("router: backend %q: want scheme://host[:port]", raw)
		}
		p.backends = append(p.backends, &Backend{URL: u, Index: i})
	}
	// Initial synchronous probe: the router answers its own /healthz
	// from this state, so it must not claim a dead fleet is up.
	var wg sync.WaitGroup
	for _, b := range p.backends {
		wg.Add(1)
		go func(b *Backend) {
			defer wg.Done()
			if p.probe(b) {
				b.healthy.Store(true)
			}
		}(b)
	}
	wg.Wait()
	p.met.syncPool(p)
	return p, nil
}

// Backends returns the full configured set, in index order.
func (p *Pool) Backends() []*Backend { return p.backends }

// NumHealthy counts backends in rotation.
func (p *Pool) NumHealthy() int {
	n := 0
	for _, b := range p.backends {
		if b.healthy.Load() {
			n++
		}
	}
	return n
}

// probe performs one /healthz round trip.
func (p *Pool) probe(b *Backend) bool {
	resp, err := p.client.Get(b.URL.JoinPath("/healthz").String())
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// Start launches the health loops. Stop with Close.
func (p *Pool) Start() {
	for _, b := range p.backends {
		p.wg.Add(1)
		go p.healthLoop(b)
	}
}

// Close stops the health loops and waits for them to exit. Idempotent.
func (p *Pool) Close() {
	p.once.Do(func() { close(p.stop) })
	p.wg.Wait()
}

// healthLoop polls one backend until Close.
func (p *Pool) healthLoop(b *Backend) {
	defer p.wg.Done()
	t := time.NewTicker(p.cfg.HealthInterval)
	defer t.Stop()
	streak := 0
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
		}
		pass := p.probe(b)
		switch {
		case pass && !b.healthy.Load():
			streak++
			if streak >= p.cfg.ReadmitAfter {
				b.healthy.Store(true)
				streak = 0
				p.met.readmitted(b.Index)
				p.met.syncPool(p)
			}
		case !pass:
			streak = 0
			p.eject(b)
		}
	}
}

// eject takes a backend out of rotation (health-loop probe failure or
// a passive signal from the proxy: transport error or drain 503).
// Idempotent per transition, so concurrent proxies and the health loop
// count each ejection once.
func (p *Pool) eject(b *Backend) {
	if b.healthy.CompareAndSwap(true, false) {
		p.met.ejected(b.Index)
		p.met.syncPool(p)
	}
}

// acquire reserves an in-flight slot on b; the caller must release it.
func (p *Pool) acquire(b *Backend) {
	b.inflight.Add(1)
	p.met.backendInflight(b.Index, b.inflight.Load())
}

// release frees an in-flight slot on b.
func (p *Pool) release(b *Backend) {
	b.inflight.Add(-1)
	p.met.backendInflight(b.Index, b.inflight.Load())
}

// eligible reports whether b can take one more request right now.
func (p *Pool) eligible(b *Backend) bool {
	return b.healthy.Load() && b.inflight.Load() < int64(p.cfg.MaxInflight)
}
