package router

import (
	"fmt"
	"time"

	"repro/internal/trace"
)

// Metrics bundles the router's instruments, registered on the same
// trace.Metrics registry the trainer and replicas use. Every method
// tolerates a nil receiver so the proxy hot path needs no
// enabled-checks. The trace registry has no label support, so
// per-backend series carry the backend index in the metric name
// (sr_router_backend_up_0, ...), fixed at pool construction.
type Metrics struct {
	// Requests counts routed upscale requests; Responses, Rejected, and
	// Errors partition their outcomes like the replica-side sr_requests
	// family (2xx / 429+503 / other).
	Requests  *trace.Counter
	Responses *trace.Counter
	Rejected  *trace.Counter
	Errors    *trace.Counter
	// RateLimited counts 429s from the per-client token bucket; Sheds
	// counts 429s from fleet-saturation admission control. Both are
	// also in Rejected.
	RateLimited *trace.Counter
	Sheds       *trace.Counter
	// Retries counts replayed attempts after a retryable backend
	// failure (transport error, drain 503, backend 429).
	Retries *trace.Counter
	// HedgesLaunched counts hedge attempts launched after the p95
	// delay; HedgeWins counts the subset that beat the primary, and
	// HedgeWasted the losers whose work was cancelled or discarded —
	// launched = won + wasted, so wasted/launched is the misfire rate
	// the hedge delay should be tuned against.
	HedgesLaunched *trace.Counter
	HedgeWins      *trace.Counter
	HedgeWasted    *trace.Counter
	// Ejections and Readmits count backend rotation transitions;
	// BackendsHealthy gauges the current rotation size.
	Ejections       *trace.Counter
	Readmits        *trace.Counter
	BackendsHealthy *trace.Gauge
	// ProxySeconds histograms end-to-end routed latency (placement,
	// all attempts, response copy-out).
	ProxySeconds *trace.Histogram

	backendUp   []*trace.Gauge
	backendLoad []*trace.Gauge
	backendReqs []*trace.Counter
}

// NewMetrics registers the router instruments for n backends on m
// (nil m → nil bundle, metrics off).
func NewMetrics(m *trace.Metrics, n int) *Metrics {
	if m == nil {
		return nil
	}
	r := &Metrics{
		Requests:        m.Counter("sr_router_requests_total", "Upscale requests received by the router."),
		Responses:       m.Counter("sr_router_responses_total", "Routed requests answered 2xx."),
		Rejected:        m.Counter("sr_router_rejected_total", "Requests rejected with 429 or 503 at the router."),
		Errors:          m.Counter("sr_router_errors_total", "Routed requests that failed with another error."),
		RateLimited:     m.Counter("sr_router_ratelimited_total", "429s from the per-client token bucket."),
		Sheds:           m.Counter("sr_router_sheds_total", "429s from fleet-saturation admission control."),
		Retries:         m.Counter("sr_router_retries_total", "Attempts replayed on another backend after a retryable failure."),
		HedgesLaunched:  m.Counter("sr_router_hedge_launched_total", "Hedge attempts launched after the p95 delay."),
		HedgeWins:       m.Counter("sr_router_hedge_won_total", "Hedge attempts that beat the primary."),
		HedgeWasted:     m.Counter("sr_router_hedge_wasted_total", "Hedge attempts that lost (cancelled or their result discarded)."),
		Ejections:       m.Counter("sr_router_ejections_total", "Backends removed from rotation (probe failure, transport error, or drain)."),
		Readmits:        m.Counter("sr_router_readmits_total", "Backends re-admitted after consecutive probe passes."),
		BackendsHealthy: m.Gauge("sr_router_backends_healthy", "Backends currently in rotation."),
		ProxySeconds:    m.Histogram("sr_router_proxy_seconds", "End-to-end routed request latency.", trace.DurationBuckets),
	}
	for i := 0; i < n; i++ {
		r.backendUp = append(r.backendUp,
			m.Gauge(fmt.Sprintf("sr_router_backend_up_%d", i), fmt.Sprintf("Backend %d is in rotation (1) or ejected (0).", i)))
		r.backendLoad = append(r.backendLoad,
			m.Gauge(fmt.Sprintf("sr_router_backend_inflight_%d", i), fmt.Sprintf("Requests in flight against backend %d.", i)))
		r.backendReqs = append(r.backendReqs,
			m.Counter(fmt.Sprintf("sr_router_backend_requests_total_%d", i), fmt.Sprintf("Attempts sent to backend %d.", i)))
	}
	return r
}

// request records one routed request arrival.
func (m *Metrics) request() {
	if m == nil {
		return
	}
	m.Requests.Inc()
}

// outcome records the status written back to the client, partitioned
// like serve.Metrics.httpOutcome.
func (m *Metrics) outcome(code int) {
	if m == nil {
		return
	}
	switch {
	case code >= 200 && code < 300:
		m.Responses.Inc()
	case code == 429 || code == 503:
		m.Rejected.Inc()
	default:
		m.Errors.Inc()
	}
}

// attempt records one proxy attempt dispatched to backend i.
func (m *Metrics) attempt(i int) {
	if m == nil || i >= len(m.backendReqs) {
		return
	}
	m.backendReqs[i].Inc()
}

// backendInflight updates backend i's live in-flight gauge.
func (m *Metrics) backendInflight(i int, n int64) {
	if m == nil || i >= len(m.backendLoad) {
		return
	}
	m.backendLoad[i].Set(float64(n))
}

// ejected counts one rotation removal.
func (m *Metrics) ejected(int) {
	if m == nil {
		return
	}
	m.Ejections.Inc()
}

// readmitted counts one rotation return.
func (m *Metrics) readmitted(int) {
	if m == nil {
		return
	}
	m.Readmits.Inc()
}

// syncPool refreshes the rotation gauges from the pool's current
// state.
func (m *Metrics) syncPool(p *Pool) {
	if m == nil {
		return
	}
	n := 0
	for _, b := range p.backends {
		up := 0.0
		if b.healthy.Load() {
			up = 1
			n++
		}
		if b.Index < len(m.backendUp) {
			m.backendUp[b.Index].Set(up)
		}
	}
	m.BackendsHealthy.Set(float64(n))
}

// observeProxy records one routed request's end-to-end latency.
func (m *Metrics) observeProxy(d time.Duration) {
	if m == nil {
		return
	}
	m.ProxySeconds.Observe(d.Seconds())
}

// proxyExemplar links a retained trace ID to the latency bucket its
// routed request landed in.
func (m *Metrics) proxyExemplar(sec float64, traceID string) {
	if m == nil {
		return
	}
	m.ProxySeconds.Exemplar(sec, traceID)
}
