// Package imageio converts between the tensor representation used by the
// models (NCHW float32 in [0,1]) and standard image files (PNG), so
// examples and tools can emit actual super-resolution results — the
// paper's Fig. 4-style side-by-side comparisons.
package imageio

import (
	"bytes"
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"
	"os"

	"repro/internal/tensor"
)

// ToImage converts a (1, C, H, W) tensor with values in [0,1] to an RGBA
// image. C must be 1 (grayscale) or 3 (RGB); values are clamped.
func ToImage(t *tensor.Tensor) (*image.RGBA, error) {
	if t.Rank() != 4 || t.Dim(0) != 1 {
		return nil, fmt.Errorf("imageio: want a single image (1,C,H,W), got %v", t.Shape())
	}
	c, h, w := t.Dim(1), t.Dim(2), t.Dim(3)
	if c != 1 && c != 3 {
		return nil, fmt.Errorf("imageio: want 1 or 3 channels, got %d", c)
	}
	img := image.NewRGBA(image.Rect(0, 0, w, h))
	d := t.Data()
	plane := h * w
	pix := func(ch, y, x int) uint8 {
		v := d[ch*plane+y*w+x]
		if v < 0 {
			v = 0
		} else if v > 1 {
			v = 1
		}
		return uint8(v*255 + 0.5)
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			var r, g, b uint8
			if c == 1 {
				r = pix(0, y, x)
				g, b = r, r
			} else {
				r, g, b = pix(0, y, x), pix(1, y, x), pix(2, y, x)
			}
			img.SetRGBA(x, y, color.RGBA{R: r, G: g, B: b, A: 255})
		}
	}
	return img, nil
}

// FromImage converts any image to a (1, 3, H, W) tensor with values in
// [0,1].
func FromImage(img image.Image) *tensor.Tensor {
	b := img.Bounds()
	h, w := b.Dy(), b.Dx()
	t := tensor.New(1, 3, h, w)
	d := t.Data()
	plane := h * w
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			r, g, bl, _ := img.At(b.Min.X+x, b.Min.Y+y).RGBA()
			d[0*plane+y*w+x] = float32(r) / 65535
			d[1*plane+y*w+x] = float32(g) / 65535
			d[2*plane+y*w+x] = float32(bl) / 65535
		}
	}
	return t
}

// WritePNG encodes a (1, C, H, W) tensor to w as PNG.
func WritePNG(w io.Writer, t *tensor.Tensor) error {
	img, err := ToImage(t)
	if err != nil {
		return err
	}
	return png.Encode(w, img)
}

// SavePNG writes the tensor to a PNG file.
func SavePNG(path string, t *tensor.Tensor) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return WritePNG(f, t)
}

// MaxDecodePixels bounds ReadPNG's decoded image size (16 Mpixel): the
// dimensions are checked from the header before the pixel buffer is
// allocated, so a tiny malicious file cannot demand gigabytes.
const MaxDecodePixels = 1 << 24

// ReadPNG decodes a PNG stream into a (1, 3, H, W) tensor. This is the
// server-facing decode path: input is untrusted, so the image header is
// validated against MaxDecodePixels before decoding and any decoder
// error is returned rather than panicking (fuzzed by FuzzDecodePNG).
func ReadPNG(r io.Reader) (*tensor.Tensor, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("imageio: reading PNG: %w", err)
	}
	cfg, err := png.DecodeConfig(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("imageio: %w", err)
	}
	if cfg.Width < 1 || cfg.Height < 1 {
		return nil, fmt.Errorf("imageio: invalid image size %dx%d", cfg.Width, cfg.Height)
	}
	if int64(cfg.Width)*int64(cfg.Height) > MaxDecodePixels {
		return nil, fmt.Errorf("imageio: image %dx%d exceeds the %d-pixel decode limit",
			cfg.Width, cfg.Height, MaxDecodePixels)
	}
	img, err := png.Decode(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("imageio: %w", err)
	}
	b := img.Bounds()
	if b.Dx() < 1 || b.Dy() < 1 {
		return nil, fmt.Errorf("imageio: decoded image has empty bounds %v", b)
	}
	return FromImage(img), nil
}

// LoadPNG reads a PNG file into a (1, 3, H, W) tensor.
func LoadPNG(path string) (*tensor.Tensor, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadPNG(f)
}

// SideBySide concatenates equally-sized (1, C, H, W) tensors horizontally
// with a 2-pixel white gutter — the layout of the paper's Fig. 4
// comparisons.
func SideBySide(tensors ...*tensor.Tensor) (*tensor.Tensor, error) {
	if len(tensors) == 0 {
		return nil, fmt.Errorf("imageio: no tensors")
	}
	c, h, w := tensors[0].Dim(1), tensors[0].Dim(2), tensors[0].Dim(3)
	for _, t := range tensors[1:] {
		if t.Dim(1) != c || t.Dim(2) != h || t.Dim(3) != w {
			return nil, fmt.Errorf("imageio: size mismatch %v vs %v", t.Shape(), tensors[0].Shape())
		}
	}
	const gutter = 2
	outW := len(tensors)*w + (len(tensors)-1)*gutter
	out := tensor.New(1, c, h, outW)
	out.Fill(1) // white background
	for i, t := range tensors {
		x0 := i * (w + gutter)
		for ch := 0; ch < c; ch++ {
			for y := 0; y < h; y++ {
				src := t.Data()[(ch*h+y)*w : (ch*h+y+1)*w]
				dst := out.Data()[(ch*h+y)*outW+x0 : (ch*h+y)*outW+x0+w]
				copy(dst, src)
			}
		}
	}
	return out, nil
}
