package imageio

import (
	"bytes"
	"image"
	"image/color"
	"image/png"
	"testing"

	"repro/internal/tensor"
)

// seedPNG encodes a small gradient image for the fuzz corpus.
func seedPNG(w, h int, gray bool) []byte {
	var img image.Image
	if gray {
		g := image.NewGray(image.Rect(0, 0, w, h))
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				g.SetGray(x, y, color.Gray{Y: uint8(x*37 + y*11)})
			}
		}
		img = g
	} else {
		rgba := image.NewRGBA(image.Rect(0, 0, w, h))
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				rgba.SetRGBA(x, y, color.RGBA{R: uint8(x * 17), G: uint8(y * 29), B: uint8(x ^ y), A: 255})
			}
		}
		img = rgba
	}
	var buf bytes.Buffer
	if err := png.Encode(&buf, img); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzDecodePNG is the untrusted-input gate for the serving decode path:
// ReadPNG must never panic or allocate unbounded memory, whatever bytes
// arrive — valid PNGs, truncated streams, bit flips, or garbage. A
// successful decode must produce a sane (1, 3, H, W) tensor within the
// MaxDecodePixels bound, with every value in [0,1].
func FuzzDecodePNG(f *testing.F) {
	valid := seedPNG(9, 7, false)
	f.Add(valid)
	f.Add(seedPNG(1, 1, false))
	f.Add(seedPNG(4, 12, true))
	f.Add(valid[:len(valid)/2])       // truncated mid-chunk
	f.Add(valid[:20])                 // header only
	f.Add([]byte{})                   // empty
	f.Add([]byte("not a png at all")) // garbage
	f.Add(bytes.Repeat([]byte{0x89, 'P', 'N', 'G'}, 8))
	// Valid signature, corrupt IHDR claiming a huge image.
	huge := append([]byte(nil), valid...)
	huge[16], huge[17], huge[18], huge[19] = 0x7f, 0xff, 0xff, 0xff // width
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		x, err := ReadPNG(bytes.NewReader(data))
		if err != nil {
			return // rejected input is fine; panics and OOM are the bugs
		}
		if x.Rank() != 4 || x.Dim(0) != 1 || x.Dim(1) != 3 {
			t.Fatalf("decoded tensor has shape %v, want (1,3,H,W)", x.Shape())
		}
		h, w := x.Dim(2), x.Dim(3)
		if h < 1 || w < 1 || int64(h)*int64(w) > MaxDecodePixels {
			t.Fatalf("decoded %dx%d outside (0, %d] pixel bounds", w, h, MaxDecodePixels)
		}
		for i, v := range x.Data() {
			if v < 0 || v > 1 || v != v {
				t.Fatalf("pixel %d = %g outside [0,1]", i, v)
			}
		}
	})
}

// TestReadPNGRoundTrip pins the decode side against the existing
// encoder: WritePNG → ReadPNG must reproduce the tensor exactly up to
// the 8-bit quantization step.
func TestReadPNGRoundTrip(t *testing.T) {
	rng := tensor.NewRNG(71)
	x := tensor.New(1, 3, 13, 9)
	x.FillUniform(rng, 0, 1)
	var buf bytes.Buffer
	if err := WritePNG(&buf, x); err != nil {
		t.Fatalf("WritePNG: %v", err)
	}
	got, err := ReadPNG(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadPNG: %v", err)
	}
	if !got.SameShape(x) {
		t.Fatalf("round trip shape %v, want %v", got.Shape(), x.Shape())
	}
	gd, xd := got.Data(), x.Data()
	for i := range gd {
		d := float64(gd[i]) - float64(xd[i])
		if d < 0 {
			d = -d
		}
		if d > 1.0/255+1e-6 { // one 8-bit quantization step
			t.Fatalf("pixel %d drifted by %g through the PNG round trip", i, d)
		}
	}
}

// TestReadPNGRejectsHugeHeader checks the decode-limit guard fires from
// the header alone, before pixel buffers are allocated.
func TestReadPNGRejectsHugeHeader(t *testing.T) {
	valid := seedPNG(9, 7, false)
	huge := append([]byte(nil), valid...)
	huge[16], huge[17], huge[18], huge[19] = 0x7f, 0xff, 0xff, 0xff
	if _, err := ReadPNG(bytes.NewReader(huge)); err == nil {
		t.Fatal("expected a decode-limit error for a 2-gigapixel header")
	}
}
