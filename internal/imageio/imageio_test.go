package imageio

import (
	"bytes"
	"image/png"
	"path/filepath"
	"testing"

	"repro/internal/tensor"
)

func TestToImageAndBack(t *testing.T) {
	rng := tensor.NewRNG(1)
	src := tensor.New(1, 3, 8, 6)
	src.FillUniform(rng, 0, 1)
	img, err := ToImage(src)
	if err != nil {
		t.Fatal(err)
	}
	if img.Bounds().Dx() != 6 || img.Bounds().Dy() != 8 {
		t.Fatalf("bounds %v", img.Bounds())
	}
	back := FromImage(img)
	if back.Dim(2) != 8 || back.Dim(3) != 6 {
		t.Fatalf("shape %v", back.Shape())
	}
	// 8-bit quantization: values within 1/255.
	for i := range src.Data() {
		d := src.Data()[i] - back.Data()[i]
		if d > 1.0/254 || d < -1.0/254 {
			t.Fatalf("element %d: %g vs %g", i, src.Data()[i], back.Data()[i])
		}
	}
}

func TestToImageGrayscale(t *testing.T) {
	src := tensor.New(1, 1, 4, 4)
	src.Fill(0.5)
	img, err := ToImage(src)
	if err != nil {
		t.Fatal(err)
	}
	r, g, b, _ := img.At(0, 0).RGBA()
	if r != g || g != b {
		t.Fatal("grayscale should replicate channels")
	}
}

func TestToImageClampsOutOfRange(t *testing.T) {
	src := tensor.New(1, 3, 2, 2)
	src.Fill(1.7)
	img, err := ToImage(src)
	if err != nil {
		t.Fatal(err)
	}
	r, _, _, _ := img.At(0, 0).RGBA()
	if r != 65535 {
		t.Fatalf("overshoot should clamp to white, got %d", r)
	}
}

func TestToImageRejectsBadShapes(t *testing.T) {
	if _, err := ToImage(tensor.New(2, 3, 4, 4)); err == nil {
		t.Fatal("batch > 1 should fail")
	}
	if _, err := ToImage(tensor.New(1, 2, 4, 4)); err == nil {
		t.Fatal("2 channels should fail")
	}
}

func TestPNGRoundTrip(t *testing.T) {
	rng := tensor.NewRNG(2)
	src := tensor.New(1, 3, 10, 12)
	src.FillUniform(rng, 0, 1)
	var buf bytes.Buffer
	if err := WritePNG(&buf, src); err != nil {
		t.Fatal(err)
	}
	img, err := png.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	back := FromImage(img)
	if back.Dim(2) != 10 || back.Dim(3) != 12 {
		t.Fatalf("decoded shape %v", back.Shape())
	}
}

func TestSaveLoadPNG(t *testing.T) {
	rng := tensor.NewRNG(3)
	src := tensor.New(1, 3, 6, 6)
	src.FillUniform(rng, 0, 1)
	path := filepath.Join(t.TempDir(), "x.png")
	if err := SavePNG(path, src); err != nil {
		t.Fatal(err)
	}
	back, err := LoadPNG(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := range src.Data() {
		d := src.Data()[i] - back.Data()[i]
		if d > 1.0/254 || d < -1.0/254 {
			t.Fatal("file round trip lost precision")
		}
	}
}

func TestLoadPNGMissing(t *testing.T) {
	if _, err := LoadPNG(filepath.Join(t.TempDir(), "nope.png")); err == nil {
		t.Fatal("expected error")
	}
}

func TestSideBySide(t *testing.T) {
	a := tensor.New(1, 3, 4, 5)
	a.Fill(0.2)
	b := tensor.New(1, 3, 4, 5)
	b.Fill(0.8)
	out, err := SideBySide(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if out.Dim(3) != 12 { // 5 + 2 + 5
		t.Fatalf("width %d", out.Dim(3))
	}
	if out.At(0, 0, 0, 0) != 0.2 || out.At(0, 0, 0, 7) != 0.8 {
		t.Fatal("content misplaced")
	}
	if out.At(0, 0, 0, 5) != 1 {
		t.Fatal("gutter should be white")
	}
}

func TestSideBySideMismatch(t *testing.T) {
	if _, err := SideBySide(tensor.New(1, 3, 4, 4), tensor.New(1, 3, 5, 5)); err == nil {
		t.Fatal("expected size-mismatch error")
	}
	if _, err := SideBySide(); err == nil {
		t.Fatal("expected empty error")
	}
}
