// Package perfmodel holds the calibrated performance model of EDSR
// training on a Volta V100: compute rates taken from the paper's own
// single-GPU measurements (Fig. 1), the per-tensor gradient layout that
// drives Horovod fusion, the batch-size/memory model behind Fig. 9, and
// the jittered step-time generator the scaling simulation consumes.
//
// Everything here is a model input, not a claim: absolute numbers come
// from the paper, shapes come from architecture arithmetic.
package perfmodel

import (
	"fmt"

	"repro/internal/models"
)

// Calibration constants from the paper.
const (
	// EDSRImagesPerSecV100 is the paper's measured single-V100 EDSR
	// training throughput at batch size 4 (abstract and Fig. 1).
	EDSRImagesPerSecV100 = 10.3
	// ResNet50ImagesPerSecV100 is the paper's ResNet-50 comparison point.
	ResNet50ImagesPerSecV100 = 360.0
	// EDSRBatchSize is the batch size the paper selected from Fig. 9.
	EDSRBatchSize = 4
)

// Step-time decomposition: t(b) = FixedOverheadSec + b·PerImageSec.
// Solving 4/t(4) = 10.3 img/s with a kernel-launch/driver overhead share
// gives the Fig. 9 saturating-throughput shape.
const (
	// EDSRFixedOverheadSec is the per-step fixed cost (launch, optimizer,
	// Python) independent of batch size.
	EDSRFixedOverheadSec = 0.040
	// EDSRPerImageSec is the marginal compute cost per image.
	EDSRPerImageSec = 0.087125
	// ForwardFraction of the compute time; the rest is the backward pass,
	// during which gradients become available for communication.
	ForwardFraction = 0.35
)

// V100MemBytes is the device memory (16 GB).
const V100MemBytes int64 = 16 << 30

// EDSRActivationBytesPerImage is the training-time activation + autograd
// footprint per image for the paper configuration (B=32, F=256, 48 px LR
// patch): ~1.55 GB. It caps the usable batch size on a 16 GB V100 at 8,
// which is the Fig. 9 sweep's upper end.
const EDSRActivationBytesPerImage int64 = 1_660_000_000

// EDSRModelStateBytes is the resident model + optimizer state (weights,
// gradients, Adam moments: 4 copies of ~41 M float32 parameters).
const EDSRModelStateBytes int64 = 680_000_000

// EDSRStepSec returns the modeled single-V100 step time at batch b.
func EDSRStepSec(b int) float64 {
	return EDSRFixedOverheadSec + float64(b)*EDSRPerImageSec
}

// EDSRThroughput returns modeled single-V100 images/second at batch b and
// whether the batch fits in device memory.
func EDSRThroughput(b int) (imgsPerSec float64, fits bool) {
	mem := EDSRModelStateBytes + int64(b)*EDSRActivationBytesPerImage
	return float64(b) / EDSRStepSec(b), mem <= V100MemBytes
}

// ResNet50Throughput returns the modeled ResNet-50 throughput (images/s)
// at its standard batch size — the paper's Fig. 1 contrast point. The
// batch-size dependence reuses the same saturating form.
func ResNet50Throughput(b int) float64 {
	// Calibrated to 360 img/s at batch 64 with a V100-typical curve.
	const fixed = 0.020
	const perImage = 0.0024653
	return float64(b) / (fixed + float64(b)*perImage)
}

// TensorSpec describes one gradient tensor in registration (forward)
// order.
type TensorSpec struct {
	Name  string
	Elems int
}

// Bytes returns the tensor payload (float32).
func (t TensorSpec) Bytes() int64 { return int64(t.Elems) * 4 }

// GradLayout computes EDSR's parameter layout analytically from the
// configuration — the same arithmetic as models.NewEDSR but without
// allocating the 40M-parameter network (a test cross-checks the two).
// Order matches models.(*EDSR).Params(): head, body blocks, body end,
// tail.
func GradLayout(cfg models.EDSRConfig) []TensorSpec {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	f, c := cfg.NumFeats, cfg.Colors
	var specs []TensorSpec
	add := func(name string, elems int) {
		specs = append(specs, TensorSpec{Name: name, Elems: elems})
	}
	add("head.weight", f*c*9)
	add("head.bias", f)
	for i := 0; i < cfg.NumBlocks; i++ {
		add(fmt.Sprintf("body.%d.conv1.weight", i), f*f*9)
		add(fmt.Sprintf("body.%d.conv1.bias", i), f)
		add(fmt.Sprintf("body.%d.conv2.weight", i), f*f*9)
		add(fmt.Sprintf("body.%d.conv2.bias", i), f)
	}
	add("body.end.weight", f*f*9)
	add("body.end.bias", f)
	appendUp := func(idx, s int) {
		add(fmt.Sprintf("tail.up%d.weight", idx), f*s*s*f*9)
		add(fmt.Sprintf("tail.up%d.bias", idx), f*s*s)
	}
	switch cfg.Scale {
	case 2:
		appendUp(0, 2)
	case 3:
		appendUp(0, 3)
	case 4:
		appendUp(0, 2)
		appendUp(1, 2)
	}
	add("tail.out.weight", c*f*9)
	add("tail.out.bias", c)
	return specs
}

// TotalGradBytes sums the layout's payload — the per-step allreduce volume
// of data-parallel EDSR training (~163 MB for the paper configuration).
func TotalGradBytes(layout []TensorSpec) int64 {
	var total int64
	for _, t := range layout {
		total += t.Bytes()
	}
	return total
}

// BackwardSchedule splits the backward-pass duration into per-tensor
// completion offsets, in submission order (reverse of layout, since
// backprop reaches the tail first). Each tensor's slice of the backward
// time is proportional to its element count — conv gradient FLOPs scale
// with weight volume at EDSR's constant spatial resolution. Biases ride
// on their convolutions but are given their size-proportional (tiny)
// share, which is harmless.
//
// The returned offsets are cumulative times (0, backwardSec] at which each
// reversed-layout tensor's gradient becomes available.
func BackwardSchedule(layout []TensorSpec, backwardSec float64) []float64 {
	total := float64(TotalGradBytes(layout))
	offsets := make([]float64, len(layout))
	var acc float64
	for i := range layout {
		rev := layout[len(layout)-1-i]
		acc += backwardSec * float64(rev.Bytes()) / total
		offsets[i] = acc
	}
	return offsets
}

// Burst is a batch of gradients that becomes visible to the communication
// engine together: Tensors holds submission-order indices (0 = first
// tensor of the reversed layout), AtFrac the fraction of the backward
// pass after which the burst is available.
type Burst struct {
	AtFrac  float64
	Tensors []int
}

// burstBoundary pairs a cumulative byte fraction with its release time.
var burstBoundaries = []struct{ bytesFrac, atFrac float64 }{
	{0.07, 0.25}, // tail gradients (up-convolution) early in backward
	{0.25, 0.50}, // first stretch of body blocks
	{0.63, 0.75}, // second stretch
	{1.01, 1.00}, // remainder at backward completion
}

// BurstSchedule groups the submission-order tensors into availability
// bursts. PyTorch's framework-level gradient hooks fire eagerly, but the
// tensors only become safe for MPI after CUDA stream synchronization,
// which Horovod observes at a much coarser granularity — gradients
// therefore reach the engine in a few bunches rather than one-by-one. The
// bunch boundaries are chosen so the fused message sizes land in the
// 1–16, 16–32 and 32–64 MB classes with the weighting the paper's
// Table I / Fig. 14 report (see DESIGN.md).
func BurstSchedule(layout []TensorSpec) []Burst {
	total := float64(TotalGradBytes(layout))
	n := len(layout)
	bursts := make([]Burst, len(burstBoundaries))
	for i := range bursts {
		bursts[i].AtFrac = burstBoundaries[i].atFrac
	}
	var acc float64
	for i := 0; i < n; i++ {
		rev := layout[n-1-i]
		acc += float64(rev.Bytes())
		frac := acc / total
		b := 0
		for b < len(burstBoundaries)-1 && frac > burstBoundaries[b].bytesFrac {
			b++
		}
		bursts[b].Tensors = append(bursts[b].Tensors, i)
	}
	// Drop empty bursts (tiny models may not span all boundaries).
	out := bursts[:0]
	for _, b := range bursts {
		if len(b.Tensors) > 0 {
			out = append(out, b)
		}
	}
	return out
}
