package perfmodel

import (
	"math"
	"testing"

	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/tensor"
)

func TestCalibrationPoints(t *testing.T) {
	// The model must reproduce the paper's Fig. 1 numbers at the paper's
	// operating points.
	got, fits := EDSRThroughput(4)
	if math.Abs(got-10.3) > 0.1 {
		t.Fatalf("EDSR @batch4 = %g img/s, paper says 10.3", got)
	}
	if !fits {
		t.Fatal("batch 4 must fit in 16 GB")
	}
	if r := ResNet50Throughput(64); math.Abs(r-360) > 5 {
		t.Fatalf("ResNet-50 @batch64 = %g img/s, paper says 360", r)
	}
	// The architectural contrast: ~35x throughput gap.
	if ratio := ResNet50Throughput(64) / got; ratio < 30 || ratio > 40 {
		t.Fatalf("ResNet/EDSR ratio %g, paper implies ~35", ratio)
	}
}

func TestBatchSweepShape(t *testing.T) {
	// Fig. 9 shape: throughput increases with batch size with diminishing
	// returns, until memory runs out.
	prev := 0.0
	for _, b := range []int{1, 2, 4, 8} {
		tp, fits := EDSRThroughput(b)
		if tp <= prev {
			t.Fatalf("throughput must increase with batch: %d → %g (prev %g)", b, tp, prev)
		}
		if !fits {
			t.Fatalf("batch %d should fit", b)
		}
		prev = tp
	}
	if _, fits := EDSRThroughput(16); fits {
		t.Fatal("batch 16 must exceed 16 GB (the Fig. 9 memory wall)")
	}
	// Diminishing returns: 1→2 gain bigger than 4→8 gain, relatively.
	t1, _ := EDSRThroughput(1)
	t2, _ := EDSRThroughput(2)
	t4, _ := EDSRThroughput(4)
	t8, _ := EDSRThroughput(8)
	if (t2-t1)/t1 <= (t8-t4)/t4 {
		t.Fatal("gains should diminish with batch size")
	}
}

func TestStepSecMonotone(t *testing.T) {
	if EDSRStepSec(1) >= EDSRStepSec(8) {
		t.Fatal("step time must grow with batch")
	}
}

// TestGradLayoutMatchesModel cross-checks the analytic layout against the
// real network construction for a small configuration: same names, same
// order, same sizes.
func TestGradLayoutMatchesModel(t *testing.T) {
	for _, cfg := range []models.EDSRConfig{
		models.EDSRTiny(),
		{NumBlocks: 2, NumFeats: 8, Scale: 3, ResScale: 0.1, Colors: 3},
		{NumBlocks: 1, NumFeats: 4, Scale: 4, ResScale: 0.1, Colors: 3},
	} {
		layout := GradLayout(cfg)
		m := models.NewEDSR(cfg, tensor.NewRNG(1))
		params := m.Params()
		if len(layout) != len(params) {
			t.Fatalf("cfg %+v: layout %d tensors, model %d", cfg, len(layout), len(params))
		}
		for i, spec := range layout {
			if spec.Name != params[i].Name {
				t.Fatalf("cfg %+v tensor %d: layout %q vs model %q", cfg, i, spec.Name, params[i].Name)
			}
			if spec.Elems != params[i].Value.Len() {
				t.Fatalf("tensor %q: layout %d elems, model %d", spec.Name, spec.Elems, params[i].Value.Len())
			}
		}
		if int64(nn.GradBytes(params)) != TotalGradBytes(layout) {
			t.Fatal("byte totals disagree")
		}
	}
}

func TestPaperConfigGradVolume(t *testing.T) {
	layout := GradLayout(models.EDSRPaper())
	total := TotalGradBytes(layout)
	// ~40.7M params = ~163 MB — more than two 64 MB fusion buffers, the
	// precondition for Table I's 32-64 MB messages.
	if total < 150<<20 || total > 180<<20 {
		t.Fatalf("paper-config gradient volume %d MB, want ~163", total>>20)
	}
}

func TestBackwardScheduleProperties(t *testing.T) {
	layout := GradLayout(models.EDSRPaper())
	offsets := BackwardSchedule(layout, 0.25)
	if len(offsets) != len(layout) {
		t.Fatal("offset count mismatch")
	}
	prev := 0.0
	for i, o := range offsets {
		if o < prev {
			t.Fatalf("offsets must be non-decreasing at %d: %g < %g", i, o, prev)
		}
		prev = o
	}
	if math.Abs(offsets[len(offsets)-1]-0.25) > 1e-9 {
		t.Fatalf("last offset %g, want 0.25 (full backward)", offsets[len(offsets)-1])
	}
}

func TestBurstSchedulePartition(t *testing.T) {
	layout := GradLayout(models.EDSRPaper())
	bursts := BurstSchedule(layout)
	if len(bursts) != 4 {
		t.Fatalf("expected 4 bursts for the paper config, got %d", len(bursts))
	}
	seen := make(map[int]bool)
	prevAt := 0.0
	for _, b := range bursts {
		if b.AtFrac <= prevAt {
			t.Fatalf("burst times must increase: %v", b.AtFrac)
		}
		prevAt = b.AtFrac
		for _, id := range b.Tensors {
			if seen[id] {
				t.Fatalf("tensor %d in two bursts", id)
			}
			seen[id] = true
		}
	}
	if len(seen) != len(layout) {
		t.Fatalf("bursts cover %d of %d tensors", len(seen), len(layout))
	}
	if bursts[len(bursts)-1].AtFrac != 1.0 {
		t.Fatal("last burst must land at backward completion")
	}
}

func TestBurstSizesMatchTableIBuckets(t *testing.T) {
	// The burst partition is what places fused messages into the paper's
	// Table I buckets: burst 1 in 1-16 MB, burst 2 in 16-32 MB, bursts 3-4
	// in 32-64 MB.
	layout := GradLayout(models.EDSRPaper())
	bursts := BurstSchedule(layout)
	sizes := make([]int64, len(bursts))
	for bi, b := range bursts {
		for _, id := range b.Tensors {
			sizes[bi] += layout[len(layout)-1-id].Bytes()
		}
	}
	if !(sizes[0] > 1<<20 && sizes[0] < 16<<20) {
		t.Fatalf("burst 1 = %d MB, want 1-16", sizes[0]>>20)
	}
	if !(sizes[1] >= 16<<20 && sizes[1] < 32<<20) {
		t.Fatalf("burst 2 = %d MB, want 16-32", sizes[1]>>20)
	}
	for i := 2; i < 4; i++ {
		if !(sizes[i] >= 32<<20 && sizes[i] < 64<<20) {
			t.Fatalf("burst %d = %d MB, want 32-64", i+1, sizes[i]>>20)
		}
	}
}

func TestBurstScheduleTinyModel(t *testing.T) {
	layout := GradLayout(models.EDSRTiny())
	bursts := BurstSchedule(layout)
	if len(bursts) == 0 {
		t.Fatal("tiny model should still produce bursts")
	}
	n := 0
	for _, b := range bursts {
		n += len(b.Tensors)
	}
	if n != len(layout) {
		t.Fatalf("tiny bursts cover %d of %d", n, len(layout))
	}
}

func TestTensorSpecBytes(t *testing.T) {
	if (TensorSpec{Elems: 10}).Bytes() != 40 {
		t.Fatal("4 bytes per element")
	}
}
