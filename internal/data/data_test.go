package data

import (
	"testing"
	"testing/quick"
)

func smallCfg() SyntheticConfig {
	return SyntheticConfig{Images: 16, Height: 32, Width: 32, Channels: 3, Seed: 7}
}

func TestDatasetDeterministic(t *testing.T) {
	a := NewDataset(smallCfg())
	b := NewDataset(smallCfg())
	x, y := a.HR(3), b.HR(3)
	for i := range x.Data() {
		if x.Data()[i] != y.Data()[i] {
			t.Fatal("same (seed, index) must give identical images")
		}
	}
}

func TestDatasetImagesDiffer(t *testing.T) {
	ds := NewDataset(smallCfg())
	x, y := ds.HR(0), ds.HR(1)
	same := true
	for i := range x.Data() {
		if x.Data()[i] != y.Data()[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different indices should give different images")
	}
}

func TestDatasetPixelRange(t *testing.T) {
	ds := NewDataset(smallCfg())
	for i := 0; i < 4; i++ {
		img := ds.HR(i)
		if img.Min() < 0 || img.Max() > 1 {
			t.Fatalf("image %d out of [0,1]: [%g, %g]", i, img.Min(), img.Max())
		}
		// Images must have actual content, not be flat.
		if img.Max()-img.Min() < 0.1 {
			t.Fatalf("image %d nearly flat: range %g", i, img.Max()-img.Min())
		}
	}
}

func TestDatasetIndexOutOfRangePanics(t *testing.T) {
	ds := NewDataset(smallCfg())
	for _, idx := range []int{-1, 16} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("index %d: expected panic", idx)
				}
			}()
			ds.HR(idx)
		}()
	}
}

func TestPairShapes(t *testing.T) {
	ds := NewDataset(smallCfg())
	lr, hr := ds.Pair(2, 2)
	if lr.Dim(2) != 16 || lr.Dim(3) != 16 {
		t.Fatalf("LR shape %v", lr.Shape())
	}
	if hr.Dim(2) != 32 || hr.Dim(3) != 32 {
		t.Fatalf("HR shape %v", hr.Shape())
	}
}

func TestLoaderValidation(t *testing.T) {
	ds := NewDataset(smallCfg())
	cases := []LoaderConfig{
		{BatchSize: 0, PatchSize: 8, Scale: 2, WorldSize: 1},
		{BatchSize: 4, PatchSize: 0, Scale: 2, WorldSize: 1},
		{BatchSize: 4, PatchSize: 8, Scale: 2, WorldSize: 0},
		{BatchSize: 4, PatchSize: 8, Scale: 2, Rank: 2, WorldSize: 2},
		{BatchSize: 4, PatchSize: 99, Scale: 2, WorldSize: 1},           // patch > LR image
		{BatchSize: 4, PatchSize: 8, Scale: 2, Rank: 0, WorldSize: 100}, // ok: shard nonempty
	}
	for i, cfg := range cases[:5] {
		if _, err := NewLoader(ds, cfg); err == nil {
			t.Errorf("case %d: expected error for %+v", i, cfg)
		}
	}
	if _, err := NewLoader(ds, cases[5]); err != nil {
		t.Errorf("rank 0 of 100 on 16 images should still work: %v", err)
	}
	// But a rank beyond the dataset size has an empty shard.
	if _, err := NewLoader(ds, LoaderConfig{BatchSize: 1, PatchSize: 8, Scale: 2, Rank: 17, WorldSize: 100}); err == nil {
		t.Error("empty shard should error")
	}
}

func TestLoaderBatchShapes(t *testing.T) {
	ds := NewDataset(smallCfg())
	l, err := NewLoader(ds, LoaderConfig{BatchSize: 4, PatchSize: 8, Scale: 2, WorldSize: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b := l.Next()
	if b.LR.Dim(0) != 4 || b.LR.Dim(1) != 3 || b.LR.Dim(2) != 8 || b.LR.Dim(3) != 8 {
		t.Fatalf("LR batch %v", b.LR.Shape())
	}
	if b.HR.Dim(2) != 16 || b.HR.Dim(3) != 16 {
		t.Fatalf("HR batch %v", b.HR.Shape())
	}
	if len(b.Indices) != 4 {
		t.Fatalf("indices %v", b.Indices)
	}
}

func TestShardingPartition(t *testing.T) {
	ds := NewDataset(smallCfg())
	world := 4
	seen := map[int]int{}
	total := 0
	for r := 0; r < world; r++ {
		l, err := NewLoader(ds, LoaderConfig{BatchSize: 1, PatchSize: 8, Scale: 2, Rank: r, WorldSize: world, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, idx := range l.ShardIndices() {
			seen[idx]++
			total++
		}
	}
	if total != ds.Len() {
		t.Fatalf("shards cover %d images, want %d", total, ds.Len())
	}
	for idx, n := range seen {
		if n != 1 {
			t.Fatalf("image %d appears in %d shards", idx, n)
		}
	}
}

// Property: for any world size and rank, shards are disjoint and complete.
func TestQuickShardingDisjointComplete(t *testing.T) {
	ds := NewDataset(smallCfg())
	f := func(worldRaw uint8) bool {
		world := int(worldRaw)%8 + 1
		seen := make(map[int]bool)
		for r := 0; r < world; r++ {
			l, err := NewLoader(ds, LoaderConfig{BatchSize: 1, PatchSize: 8, Scale: 2, Rank: r, WorldSize: world, Seed: 3})
			if err != nil {
				return false
			}
			for _, idx := range l.ShardIndices() {
				if seen[idx] {
					return false
				}
				seen[idx] = true
			}
		}
		return len(seen) == ds.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestLoaderSamplesOnlyOwnShard(t *testing.T) {
	ds := NewDataset(smallCfg())
	l, err := NewLoader(ds, LoaderConfig{BatchSize: 4, PatchSize: 8, Scale: 2, Rank: 1, WorldSize: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 10; step++ {
		for _, idx := range l.Next().Indices {
			if idx%4 != 1 {
				t.Fatalf("rank 1 sampled image %d from another shard", idx)
			}
		}
	}
}

func TestLoaderPatchConsistency(t *testing.T) {
	// The LR patch must be the bicubic downscale of the HR region it pairs
	// with — verify by upscaling LR and checking rough agreement.
	ds := NewDataset(SyntheticConfig{Images: 4, Height: 32, Width: 32, Channels: 1, Seed: 2})
	l, err := NewLoader(ds, LoaderConfig{BatchSize: 2, PatchSize: 8, Scale: 2, WorldSize: 1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	b := l.Next()
	// Means of corresponding LR and HR patches should be close: bicubic
	// preserves local averages of smooth content.
	for i := 0; i < 2; i++ {
		var lrSum, hrSum float64
		lp := b.LR.Data()[i*64 : (i+1)*64]
		hp := b.HR.Data()[i*256 : (i+1)*256]
		for _, v := range lp {
			lrSum += float64(v)
		}
		for _, v := range hp {
			hrSum += float64(v)
		}
		lrMean, hrMean := lrSum/64, hrSum/256
		if d := lrMean - hrMean; d > 0.08 || d < -0.08 {
			t.Fatalf("patch %d: LR mean %g vs HR mean %g", i, lrMean, hrMean)
		}
	}
}

func TestLoaderDifferentRanksDifferentPatches(t *testing.T) {
	ds := NewDataset(smallCfg())
	mk := func(rank int) Batch {
		l, err := NewLoader(ds, LoaderConfig{BatchSize: 2, PatchSize: 8, Scale: 2, Rank: rank, WorldSize: 2, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		return l.Next()
	}
	a, b := mk(0), mk(1)
	same := true
	for i := range a.LR.Data() {
		if a.LR.Data()[i] != b.LR.Data()[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different ranks should draw different patches")
	}
}
