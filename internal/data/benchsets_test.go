package data

import (
	"testing"
)

func TestStandardBenchmarksShape(t *testing.T) {
	sets := StandardBenchmarks(32, 1)
	if len(sets) != 4 {
		t.Fatalf("sets %d", len(sets))
	}
	wantCounts := map[string]int{"synthetic5": 5, "textures8": 8, "edges6": 6, "smooth5": 5}
	for _, s := range sets {
		if s.Len() != wantCounts[s.Name] {
			t.Fatalf("%s has %d images, want %d", s.Name, s.Len(), wantCounts[s.Name])
		}
		for i := 0; i < s.Len(); i++ {
			img := s.HR(i)
			if img.Dim(2) != 32 || img.Dim(3) != 32 || img.Dim(1) != 3 {
				t.Fatalf("%s[%d] shape %v", s.Name, i, img.Shape())
			}
			if img.Min() < 0 || img.Max() > 1 {
				t.Fatalf("%s[%d] out of range", s.Name, i)
			}
		}
		if s.String() == "" {
			t.Fatal("empty description")
		}
	}
}

func TestBenchmarkSetsDeterministic(t *testing.T) {
	a := StandardBenchmarks(32, 9)
	b := StandardBenchmarks(32, 9)
	for si := range a {
		for i := 0; i < a[si].Len(); i++ {
			x, y := a[si].HR(i), b[si].HR(i)
			for j := range x.Data() {
				if x.Data()[j] != y.Data()[j] {
					t.Fatalf("%s[%d] not deterministic", a[si].Name, i)
				}
			}
		}
	}
}

func TestBenchmarkSetsHaveDistinctStatistics(t *testing.T) {
	sets := StandardBenchmarks(32, 1)
	// High-frequency energy proxy: mean |horizontal difference|.
	hfEnergy := func(s *BenchmarkSet) float64 {
		var total float64
		var n int
		for i := 0; i < s.Len(); i++ {
			img := s.HR(i)
			h, w := img.Dim(2), img.Dim(3)
			d := img.Data()
			for y := 0; y < h; y++ {
				for x := 1; x < w; x++ {
					diff := float64(d[y*w+x] - d[y*w+x-1])
					if diff < 0 {
						diff = -diff
					}
					total += diff
					n++
				}
			}
		}
		return total / float64(n)
	}
	byName := map[string]float64{}
	for _, s := range sets {
		byName[s.Name] = hfEnergy(s)
	}
	if byName["textures8"] <= byName["smooth5"]*2 {
		t.Fatalf("textures (%g) should be far busier than smooth (%g)",
			byName["textures8"], byName["smooth5"])
	}
}
