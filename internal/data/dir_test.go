package data

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/imageio"
	"repro/internal/tensor"
)

// writeTestPNGs populates a temp dir with n small PNG images.
func writeTestPNGs(t *testing.T, n int) string {
	t.Helper()
	dir := t.TempDir()
	rng := tensor.NewRNG(1)
	for i := 0; i < n; i++ {
		img := tensor.New(1, 3, 10, 14)
		img.FillUniform(rng, 0, 1)
		name := filepath.Join(dir, string(rune('a'+i))+".png")
		if err := imageio.SavePNG(name, img); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestDirDatasetScan(t *testing.T) {
	dir := writeTestPNGs(t, 3)
	// A non-PNG file must be ignored.
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	ds, err := NewDirDataset(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 3 {
		t.Fatalf("len %d", ds.Len())
	}
	img, err := ds.HR(0)
	if err != nil {
		t.Fatal(err)
	}
	if img.Dim(2) != 10 || img.Dim(3) != 14 {
		t.Fatalf("shape %v", img.Shape())
	}
	// Cached load must return the same tensor.
	again, _ := ds.HR(0)
	if again != img {
		t.Fatal("cache miss on repeated load")
	}
}

func TestDirDatasetErrors(t *testing.T) {
	if _, err := NewDirDataset(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing dir should fail")
	}
	if _, err := NewDirDataset(t.TempDir()); err == nil {
		t.Fatal("empty dir should fail")
	}
	ds, err := NewDirDataset(writeTestPNGs(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ds.HR(5); err == nil {
		t.Fatal("out-of-range index should fail")
	}
}

func TestDirDatasetDeterministicOrder(t *testing.T) {
	dir := writeTestPNGs(t, 4)
	a, _ := NewDirDataset(dir)
	b, _ := NewDirDataset(dir)
	for i := 0; i < 4; i++ {
		if a.Path(i) != b.Path(i) {
			t.Fatal("scan order must be deterministic")
		}
	}
}

func TestCropToMultiple(t *testing.T) {
	x := tensor.New(1, 3, 11, 14)
	rng := tensor.NewRNG(2)
	x.FillUniform(rng, 0, 1)
	c := CropToMultiple(x, 4)
	if c.Dim(2) != 8 || c.Dim(3) != 12 {
		t.Fatalf("cropped shape %v", c.Shape())
	}
	// Top-left content preserved.
	if c.At(0, 1, 3, 5) != x.At(0, 1, 3, 5) {
		t.Fatal("crop moved pixels")
	}
	// Already-aligned tensors pass through unchanged.
	y := tensor.New(1, 3, 8, 8)
	if CropToMultiple(y, 4) != y {
		t.Fatal("aligned tensor should be returned as-is")
	}
}
