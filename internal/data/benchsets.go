package data

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// BenchmarkSet is a small named evaluation suite in the tradition of
// Set5 / Set14 / Urban100 — the standard SR test sets the paper's
// background cites. Each procedural set has distinct image statistics so
// models are stressed differently:
//
//	synthetic5  — the training distribution (gradients + waves + blobs)
//	textures8   — dense high-frequency texture (hardest for bicubic)
//	edges6      — piecewise-constant regions with sharp edges
//	smooth5     — low-frequency only (bicubic's best case)
type BenchmarkSet struct {
	Name   string
	images []*tensor.Tensor
}

// Len returns the image count.
func (b *BenchmarkSet) Len() int { return len(b.images) }

// HR returns image i.
func (b *BenchmarkSet) HR(i int) *tensor.Tensor { return b.images[i] }

// StandardBenchmarks builds the four named sets at the given HR edge
// (must be divisible by the SR scales in use).
func StandardBenchmarks(size int, seed uint64) []*BenchmarkSet {
	return []*BenchmarkSet{
		syntheticSet("synthetic5", 5, size, seed),
		textureSet("textures8", 8, size, seed+1),
		edgeSet("edges6", 6, size, seed+2),
		smoothSet("smooth5", 5, size, seed+3),
	}
}

func syntheticSet(name string, n, size int, seed uint64) *BenchmarkSet {
	ds := NewDataset(SyntheticConfig{Images: n, Height: size, Width: size, Channels: 3, Seed: seed})
	set := &BenchmarkSet{Name: name}
	for i := 0; i < n; i++ {
		set.images = append(set.images, ds.HR(i))
	}
	return set
}

func textureSet(name string, n, size int, seed uint64) *BenchmarkSet {
	set := &BenchmarkSet{Name: name}
	for i := 0; i < n; i++ {
		rng := tensor.NewRNG(seed*7919 + uint64(i) + 1)
		img := tensor.New(1, 3, size, size)
		// Sum of many high-frequency sinusoids, different per channel.
		type wave struct{ fx, fy, ph, amp float64 }
		waves := make([]wave, 8)
		for k := range waves {
			waves[k] = wave{
				fx:  (6 + rng.Float64()*18) * 2 * math.Pi,
				fy:  (6 + rng.Float64()*18) * 2 * math.Pi,
				ph:  rng.Float64() * 2 * math.Pi,
				amp: 0.06 + 0.06*rng.Float64(),
			}
		}
		d := img.Data()
		for ch := 0; ch < 3; ch++ {
			plane := d[ch*size*size : (ch+1)*size*size]
			for y := 0; y < size; y++ {
				fy := float64(y) / float64(size)
				for x := 0; x < size; x++ {
					fx := float64(x) / float64(size)
					v := 0.5
					for _, w := range waves {
						v += w.amp * math.Sin(w.fx*fx+w.fy*fy+w.ph+float64(ch))
					}
					plane[y*size+x] = clamp01(v)
				}
			}
		}
		set.images = append(set.images, img)
	}
	return set
}

func edgeSet(name string, n, size int, seed uint64) *BenchmarkSet {
	set := &BenchmarkSet{Name: name}
	for i := 0; i < n; i++ {
		rng := tensor.NewRNG(seed*104729 + uint64(i) + 1)
		img := tensor.New(1, 3, size, size)
		img.Fill(0.5)
		d := img.Data()
		// Random axis-aligned rectangles with sharp boundaries.
		for k := 0; k < 7; k++ {
			x0, y0 := rng.Intn(size), rng.Intn(size)
			w := rng.Intn(size/2) + 2
			h := rng.Intn(size/2) + 2
			val := make([]float32, 3)
			for c := range val {
				val[c] = rng.Float32()
			}
			for y := y0; y < y0+h && y < size; y++ {
				for x := x0; x < x0+w && x < size; x++ {
					for c := 0; c < 3; c++ {
						d[c*size*size+y*size+x] = val[c]
					}
				}
			}
		}
		set.images = append(set.images, img)
	}
	return set
}

func smoothSet(name string, n, size int, seed uint64) *BenchmarkSet {
	set := &BenchmarkSet{Name: name}
	for i := 0; i < n; i++ {
		rng := tensor.NewRNG(seed*7 + uint64(i) + 1)
		img := tensor.New(1, 3, size, size)
		d := img.Data()
		for ch := 0; ch < 3; ch++ {
			base := 0.3 + 0.4*rng.Float64()
			gx := 0.3 * (rng.Float64()*2 - 1)
			gy := 0.3 * (rng.Float64()*2 - 1)
			fx := (0.5 + rng.Float64()) * 2 * math.Pi
			plane := d[ch*size*size : (ch+1)*size*size]
			for y := 0; y < size; y++ {
				ny := float64(y) / float64(size)
				for x := 0; x < size; x++ {
					nx := float64(x) / float64(size)
					v := base + gx*nx + gy*ny + 0.1*math.Sin(fx*nx)
					plane[y*size+x] = clamp01(v)
				}
			}
		}
		set.images = append(set.images, img)
	}
	return set
}

func clamp01(v float64) float32 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return float32(v)
}

// String describes the set.
func (b *BenchmarkSet) String() string {
	return fmt.Sprintf("%s (%d images)", b.Name, len(b.images))
}
