package data

import "testing"

func TestZipfSamplerDeterministic(t *testing.T) {
	a := NewZipfSampler(7, 1.1, 32).Sequence(256)
	b := NewZipfSampler(7, 1.1, 32).Sequence(256)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := NewZipfSampler(8, 1.1, 32).Sequence(256)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced an identical sequence")
	}
}

func TestZipfSamplerBoundsAndSkew(t *testing.T) {
	const n = 16
	counts := make([]int, n)
	z := NewZipfSampler(1, 1.5, n)
	for i := 0; i < 4096; i++ {
		k := z.Next()
		if k < 0 || k >= n {
			t.Fatalf("index %d out of [0,%d)", k, n)
		}
		counts[k]++
	}
	// Power-law skew: the hottest item must dominate the coldest by a
	// wide margin (deterministic given the fixed seed).
	if counts[0] <= 4*counts[n-1] {
		t.Fatalf("expected head-heavy distribution, got head %d tail %d", counts[0], counts[n-1])
	}
}

func TestZipfSamplerInvalid(t *testing.T) {
	for _, c := range []struct {
		s float64
		n int
	}{{1.0, 8}, {0.5, 8}, {1.1, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewZipfSampler(s=%v, n=%d) did not panic", c.s, c.n)
				}
			}()
			NewZipfSampler(1, c.s, c.n)
		}()
	}
}
