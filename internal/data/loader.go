package data

import (
	"fmt"

	"repro/internal/tensor"
)

// Batch is one training step's worth of LR inputs and HR targets:
// LR (B, C, p, p) and HR (B, C, p*scale, p*scale).
type Batch struct {
	LR, HR *tensor.Tensor
	// Indices records which dataset images the patches came from.
	Indices []int
}

// LoaderConfig controls patch sampling and sharding.
type LoaderConfig struct {
	// BatchSize is patches per step per rank (the paper chose 4).
	BatchSize int
	// PatchSize is the LR patch edge in pixels (EDSR trains on 48-96 px
	// HR patches; tests use smaller).
	PatchSize int
	// Scale is the SR factor.
	Scale int
	// Rank and WorldSize shard the dataset: rank r samples only images
	// with index ≡ r (mod WorldSize), the standard Horovod sharding.
	Rank, WorldSize int
	// Seed controls the patch sampling stream. Combined with Rank so each
	// rank draws different patches.
	Seed uint64
}

// Loader draws random LR/HR patch batches from a dataset shard.
type Loader struct {
	ds    *Dataset
	cfg   LoaderConfig
	rng   *tensor.RNG
	shard []int

	// cache holds the most recently used image pair; EDSR training reuses
	// each image for several patches, so a tiny cache removes most
	// generation cost.
	cacheIdx int
	cacheLR  *tensor.Tensor
	cacheHR  *tensor.Tensor
}

// NewLoader builds a loader over ds for one rank of a data-parallel job.
func NewLoader(ds *Dataset, cfg LoaderConfig) (*Loader, error) {
	if cfg.BatchSize < 1 || cfg.PatchSize < 1 || cfg.Scale < 1 {
		return nil, fmt.Errorf("data: invalid loader config %+v", cfg)
	}
	if cfg.WorldSize < 1 || cfg.Rank < 0 || cfg.Rank >= cfg.WorldSize {
		return nil, fmt.Errorf("data: invalid rank %d of %d", cfg.Rank, cfg.WorldSize)
	}
	if cfg.PatchSize > ds.Config().Height/cfg.Scale || cfg.PatchSize > ds.Config().Width/cfg.Scale {
		return nil, fmt.Errorf("data: patch %d exceeds LR image %dx%d",
			cfg.PatchSize, ds.Config().Height/cfg.Scale, ds.Config().Width/cfg.Scale)
	}
	var shard []int
	for i := cfg.Rank; i < ds.Len(); i += cfg.WorldSize {
		shard = append(shard, i)
	}
	if len(shard) == 0 {
		return nil, fmt.Errorf("data: rank %d has an empty shard (dataset %d images, world %d)",
			cfg.Rank, ds.Len(), cfg.WorldSize)
	}
	return &Loader{
		ds:       ds,
		cfg:      cfg,
		rng:      tensor.NewRNG(cfg.Seed*2654435761 + uint64(cfg.Rank)*40503 + 17),
		shard:    shard,
		cacheIdx: -1,
	}, nil
}

// ShardSize returns the number of images in this rank's shard.
func (l *Loader) ShardSize() int { return len(l.shard) }

// RNGState exposes the sampling stream's state for checkpointing.
func (l *Loader) RNGState() uint64 { return l.rng.State() }

// SetRNGState restores a sampling stream captured with RNGState, so a
// resumed training run draws exactly the batches the original would have.
func (l *Loader) SetRNGState(s uint64) { l.rng.SetState(s) }

// ShardIndices returns a copy of the image indices this rank samples from.
func (l *Loader) ShardIndices() []int { return append([]int(nil), l.shard...) }

// Next samples the next training batch.
func (l *Loader) Next() Batch {
	p, s, c := l.cfg.PatchSize, l.cfg.Scale, l.ds.Config().Channels
	lrB := tensor.New(l.cfg.BatchSize, c, p, p)
	hrB := tensor.New(l.cfg.BatchSize, c, p*s, p*s)
	idxs := make([]int, l.cfg.BatchSize)
	for b := 0; b < l.cfg.BatchSize; b++ {
		img := l.shard[l.rng.Intn(len(l.shard))]
		idxs[b] = img
		lr, hr := l.pair(img)
		lh, lw := lr.Dim(2), lr.Dim(3)
		py := l.rng.Intn(lh - p + 1)
		px := l.rng.Intn(lw - p + 1)
		copyPatch(lrB, b, lr, py, px, p)
		copyPatch(hrB, b, hr, py*s, px*s, p*s)
	}
	return Batch{LR: lrB, HR: hrB, Indices: idxs}
}

func (l *Loader) pair(img int) (lr, hr *tensor.Tensor) {
	if l.cacheIdx == img {
		return l.cacheLR, l.cacheHR
	}
	lr, hr = l.ds.Pair(img, l.cfg.Scale)
	l.cacheIdx, l.cacheLR, l.cacheHR = img, lr, hr
	return lr, hr
}

// copyPatch copies a p×p window at (py, px) from src (1,C,H,W) into batch
// slot b of dst (B,C,p,p).
func copyPatch(dst *tensor.Tensor, b int, src *tensor.Tensor, py, px, p int) {
	c, h, w := src.Dim(1), src.Dim(2), src.Dim(3)
	_ = h
	dd, sd := dst.Data(), src.Data()
	for ch := 0; ch < c; ch++ {
		for y := 0; y < p; y++ {
			srcOff := (ch*src.Dim(2)+py+y)*w + px
			dstOff := ((b*c+ch)*p + y) * p
			copy(dd[dstOff:dstOff+p], sd[srcOff:srcOff+p])
		}
	}
}
