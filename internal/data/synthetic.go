// Package data provides the training data pipeline: a procedural DIV2K-like
// dataset (the paper trains on DIV2K, which is not redistributable here),
// bicubic LR/HR pair generation, patch sampling, batching, and the
// deterministic per-rank sharding that data-parallel training requires.
package data

import (
	"math"

	"repro/internal/models"
	"repro/internal/tensor"
)

// SyntheticConfig controls the procedural image generator.
type SyntheticConfig struct {
	// Images is the dataset size (DIV2K train = 800).
	Images int
	// Height, Width are HR dimensions. DIV2K is ~2040×1356; tests use far
	// smaller sizes. Both must be divisible by the SR scale.
	Height, Width int
	// Channels is 3 for RGB.
	Channels int
	// Seed makes the whole dataset reproducible.
	Seed uint64
}

// DefaultSynthetic mirrors DIV2K's 800-image training split at a reduced
// resolution suitable for CPU training.
func DefaultSynthetic() SyntheticConfig {
	return SyntheticConfig{Images: 800, Height: 96, Width: 96, Channels: 3, Seed: 1}
}

// Dataset is an indexable HR image collection. Images are generated on
// demand and deterministically from (seed, index), so all ranks of a
// distributed job see identical data without sharing memory.
type Dataset struct {
	cfg SyntheticConfig
}

// NewDataset creates a procedural dataset.
func NewDataset(cfg SyntheticConfig) *Dataset {
	if cfg.Images < 1 || cfg.Height < 8 || cfg.Width < 8 || cfg.Channels < 1 {
		panic("data: invalid synthetic config")
	}
	return &Dataset{cfg: cfg}
}

// Len returns the number of images.
func (d *Dataset) Len() int { return d.cfg.Images }

// Config returns the generator configuration.
func (d *Dataset) Config() SyntheticConfig { return d.cfg }

// HR generates HR image i with shape (1, C, H, W) and values in [0, 1].
//
// Each image combines a smooth low-frequency gradient field, band-limited
// sinusoidal texture, and a few soft-edged shapes — enough structure that
// bicubic downsampling destroys recoverable detail, which is what gives a
// super-resolution model something to learn.
func (d *Dataset) HR(i int) *tensor.Tensor {
	if i < 0 || i >= d.cfg.Images {
		panic("data: image index out of range")
	}
	c, h, w := d.cfg.Channels, d.cfg.Height, d.cfg.Width
	rng := tensor.NewRNG(d.cfg.Seed*1000003 + uint64(i)*7919 + 13)
	img := tensor.New(1, c, h, w)

	type wave struct{ fx, fy, phase, amp float64 }
	type blob struct {
		cx, cy, r, amp float64
		ch             int
	}
	// Low-frequency structure plus band-limited high-frequency texture:
	// the high band is what bicubic downsampling destroys, giving a
	// trained model the opportunity to beat the classical baseline.
	waves := make([]wave, 6)
	for k := range waves {
		lo, span := 1.0, 6.0
		amp := 0.08 + 0.10*rng.Float64()
		if k >= 3 {
			lo, span = 8.0, 10.0
			amp = 0.10 + 0.08*rng.Float64()
		}
		waves[k] = wave{
			fx:    (rng.Float64()*span + lo) * 2 * math.Pi,
			fy:    (rng.Float64()*span + lo) * 2 * math.Pi,
			phase: rng.Float64() * 2 * math.Pi,
			amp:   amp,
		}
	}
	blobs := make([]blob, 5)
	for k := range blobs {
		blobs[k] = blob{
			cx: rng.Float64(), cy: rng.Float64(),
			r:   0.05 + 0.2*rng.Float64(),
			amp: 0.25 * (rng.Float64()*2 - 1),
			ch:  rng.Intn(c),
		}
	}
	base := make([]float64, c)
	gradX := make([]float64, c)
	gradY := make([]float64, c)
	for ch := 0; ch < c; ch++ {
		base[ch] = 0.3 + 0.4*rng.Float64()
		gradX[ch] = 0.3 * (rng.Float64()*2 - 1)
		gradY[ch] = 0.3 * (rng.Float64()*2 - 1)
	}

	d1 := img.Data()
	for ch := 0; ch < c; ch++ {
		plane := d1[ch*h*w : (ch+1)*h*w]
		for y := 0; y < h; y++ {
			fy := float64(y) / float64(h)
			for x := 0; x < w; x++ {
				fx := float64(x) / float64(w)
				v := base[ch] + gradX[ch]*fx + gradY[ch]*fy
				for _, wv := range waves {
					v += wv.amp * math.Sin(wv.fx*fx+wv.fy*fy+wv.phase+float64(ch)*0.7)
				}
				for _, bl := range blobs {
					if bl.ch != ch {
						continue
					}
					dx, dy := fx-bl.cx, fy-bl.cy
					dist := math.Sqrt(dx*dx + dy*dy)
					// Soft-edged disc: smoothstep falloff over 10% of r.
					edge := (bl.r - dist) / (0.1 * bl.r)
					if edge > 0 {
						if edge > 1 {
							edge = 1
						}
						v += bl.amp * edge * edge * (3 - 2*edge)
					}
				}
				if v < 0 {
					v = 0
				} else if v > 1 {
					v = 1
				}
				plane[y*w+x] = float32(v)
			}
		}
	}
	return img
}

// Pair returns the (LR, HR) pair for image i at the given SR scale. The LR
// image is the bicubic downscale of HR, matching the DIV2K "bicubic"
// track the paper trains on.
func (d *Dataset) Pair(i, scale int) (lr, hr *tensor.Tensor) {
	hr = d.HR(i)
	if hr.Dim(2)%scale != 0 || hr.Dim(3)%scale != 0 {
		panic("data: HR size not divisible by scale")
	}
	lr = models.BicubicDownscale(hr, scale)
	return lr, hr
}
