package data

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/imageio"
	"repro/internal/tensor"
)

// DirDataset serves HR images from a directory of PNG files — the path a
// user takes to train on real data (e.g. an actual DIV2K download) instead
// of the synthetic generator. Images are decoded lazily and cached.
type DirDataset struct {
	paths []string
	cache map[int]*tensor.Tensor
}

// NewDirDataset scans dir for .png files (sorted by name for determinism).
func NewDirDataset(dir string) (*DirDataset, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("data: reading %s: %w", dir, err)
	}
	var paths []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(strings.ToLower(e.Name()), ".png") {
			continue
		}
		paths = append(paths, filepath.Join(dir, e.Name()))
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("data: no .png files in %s", dir)
	}
	sort.Strings(paths)
	return &DirDataset{paths: paths, cache: map[int]*tensor.Tensor{}}, nil
}

// Len returns the image count.
func (d *DirDataset) Len() int { return len(d.paths) }

// Path returns the file backing image i.
func (d *DirDataset) Path(i int) string { return d.paths[i] }

// HR loads (and caches) image i as a (1, 3, H, W) tensor in [0,1].
func (d *DirDataset) HR(i int) (*tensor.Tensor, error) {
	if i < 0 || i >= len(d.paths) {
		return nil, fmt.Errorf("data: image index %d out of range [0,%d)", i, len(d.paths))
	}
	if t, ok := d.cache[i]; ok {
		return t, nil
	}
	t, err := imageio.LoadPNG(d.paths[i])
	if err != nil {
		return nil, fmt.Errorf("data: %s: %w", d.paths[i], err)
	}
	d.cache[i] = t
	return t, nil
}

// CropToMultiple trims an HR tensor so its spatial dimensions are
// divisible by scale — real photos rarely come pre-aligned.
func CropToMultiple(t *tensor.Tensor, scale int) *tensor.Tensor {
	h, w := t.Dim(2), t.Dim(3)
	nh, nw := h-h%scale, w-w%scale
	if nh == h && nw == w {
		return t
	}
	c := t.Dim(1)
	out := tensor.New(1, c, nh, nw)
	for ch := 0; ch < c; ch++ {
		for y := 0; y < nh; y++ {
			src := t.Data()[(ch*h+y)*w : (ch*h+y)*w+nw]
			dst := out.Data()[(ch*nh+y)*nw : (ch*nh+y+1)*nw]
			copy(dst, src)
		}
	}
	return out
}
