package data

import "math/rand"

// ZipfSampler draws item indices from a Zipf power-law distribution —
// the canonical model of redundant serving traffic, where a few hot
// images (thumbnails, logos) dominate a long tail. It drives the
// bench-serve repeat-traffic generator against the result cache; like
// the Dataset generator it is fully determined by its seed, so a
// recorded benchmark names everything needed to reproduce its request
// stream.
type ZipfSampler struct {
	z *rand.Zipf
}

// NewZipfSampler samples indices in [0, n) with P(k) ∝ 1/(k+1)^s.
// s must be > 1 (the standard library's Zipf domain); larger s
// concentrates more of the traffic on the hottest items. Panics on an
// invalid configuration, matching NewDataset.
func NewZipfSampler(seed uint64, s float64, n int) *ZipfSampler {
	if n < 1 || s <= 1 {
		panic("data: ZipfSampler wants n >= 1 and s > 1")
	}
	r := rand.New(rand.NewSource(int64(seed)))
	return &ZipfSampler{z: rand.NewZipf(r, s, 1, uint64(n-1))}
}

// Next draws the next index.
func (z *ZipfSampler) Next() int { return int(z.z.Uint64()) }

// Sequence draws the next m indices at once (convenience for carving a
// deterministic request stream into per-client slices).
func (z *ZipfSampler) Sequence(m int) []int {
	seq := make([]int, m)
	for i := range seq {
		seq[i] = z.Next()
	}
	return seq
}
