#!/bin/sh
# check.sh — repository health gates.
#
# Tier 1 (must stay green): build + full test suite.
# Tier 2 (hygiene): vet, formatting, the race detector over the
# batch-parallel kernel paths, the overlapped communication path, and the
# serving batcher, the compiled-inference gates (bit-exactness, PSNR
# admission, zero-alloc forward, quantization fuzz), the zero-allocation
# steady-state gates, the gradient-compression gates (fp16/top-k codecs,
# convergence envelopes, wire accounting), fuzz smokes for the untrusted
# decode paths, and bench smoke runs.
set -e

cd "$(dirname "$0")/.."

echo "== tier 1: build + tests"
go build ./...
go test ./...

echo "== tier 2: vet"
go vet ./...

echo "== tier 2: gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== tier 2: race detector (parallel conv + GEMM)"
go test -race ./internal/nn/ ./internal/tensor/

echo "== tier 2: race detector (overlapped backward/comm + collectives)"
go test -race ./internal/mpi/ ./internal/horovod/

echo "== tier 2: tracing gate (concurrent span recording under race, 0 allocs with recorder enabled)"
go test -race -run 'Concurrent|Gather|ProfilerTracerAgree' ./internal/trace/
go test -run 'NoAllocs' -v ./internal/trace/ | grep -E '^(--- (PASS|FAIL)|ok|FAIL)'

echo "== tier 2: fault tolerance (injection, crash-safe checkpoints, elastic restart) under race"
go test -race -run 'Fault|Crash|Elastic|Resume|Atomic|Recv|Drop|Delay|Cascade|Engine' \
    ./internal/mpi/ ./internal/horovod/ ./internal/trainer/

echo "== tier 2: fuzz smoke (tensor deserialization)"
go test -run '^$' -fuzz 'FuzzUnmarshalBinary' -fuzztime 5s ./internal/tensor/

echo "== tier 2: fuzz smoke (untrusted PNG decode)"
go test -run '^$' -fuzz 'FuzzDecodePNG' -fuzztime 5s ./internal/imageio/

echo "== tier 2: serving gate (builds, batcher under race, tiling equivalence, e2e golden)"
go build -o /tmp/check-bin/ ./cmd/sr-serve ./cmd/bench-serve
rm -rf /tmp/check-bin
go test -race ./internal/serve/ ./internal/imageio/

echo "== tier 2: zero-allocation steady-state gates"
go test -run 'ZeroAlloc|NoAllocs' -v ./internal/mpi/ ./internal/nn/ ./internal/tensor/ ./internal/trace/ ./internal/serve/ ./internal/collective/ | grep -E '^(--- (PASS|FAIL)|ok|FAIL)'

echo "== tier 2: compression gate (fp16/top-k/hierarchical allreduce + convergence envelopes + engine error path under race)"
go test -race -run 'Compress|FP16|TopK|Hier|Convergence|AllreduceFn|Half' \
    ./internal/mpi/ ./internal/collective/ ./internal/horovod/ ./internal/tensor/

echo "== tier 2: fuzz smoke (top-k sparse payload codec)"
go test -run '^$' -fuzz 'FuzzTopKEncodeDecode' -fuzztime 5s ./internal/collective/

echo "== tier 2: bench-comm smoke (incl. compression sweep wire accounting)"
go run ./cmd/bench-comm -quick -steps 2 -o /tmp/BENCH_comm_smoke.json
grep -q '"compression"' /tmp/BENCH_comm_smoke.json
grep -q '"wire_vs_exact"' /tmp/BENCH_comm_smoke.json
rm -f /tmp/BENCH_comm_smoke.json

echo "== tier 2: inference compile gate (compiled forward under race, bit-exactness, PSNR gate)"
go test -race -run 'Fused|Compiled|Gate' ./internal/nn/ ./internal/models/ ./internal/serve/

echo "== tier 2: inference compile gate (zero-alloc compiled forward)"
go test -run 'TestFusedConv2dZeroAlloc|TestCompiledEDSRZeroAlloc' -v ./internal/nn/ ./internal/models/ | grep -E '^(--- (PASS|FAIL)|ok|FAIL)'

echo "== tier 2: fuzz smoke (activation quantization round-trip)"
go test -run '^$' -fuzz 'FuzzQuantizeU7RoundTrip' -fuzztime 5s ./internal/tensor/

echo "== tier 2: result-cache gate (LRU/singleflight under race, hit/miss/evict/drain hammers, byte-identity)"
go test -race ./internal/serve/cache/
go test -race -run 'Cache' ./internal/serve/

echo "== tier 2: result-cache gate (zero-alloc hit-path lookup)"
go test -run 'NoAllocs' -v ./internal/serve/cache/ | grep -E '^(--- (PASS|FAIL)|ok|FAIL)'

echo "== tier 2: fuzz smoke (content-hash key derivation)"
go test -run '^$' -fuzz 'FuzzKeyDerivation' -fuzztime 5s ./internal/serve/cache/

echo "== tier 2: bench-serve smoke (all serving variants + Zipf cache sweep)"
go run ./cmd/bench-serve -quick -seed 9 -variants float32,fused,int8 -o /tmp/BENCH_serve_smoke.json
rm -f /tmp/BENCH_serve_smoke.json

echo "== tier 2: fleet router gate (pool/placement/hedge units + zero-loss rolling-restart e2e under race)"
go build -o /tmp/check-bin/ ./cmd/sr-router ./cmd/bench-router
rm -rf /tmp/check-bin
go test -race ./internal/router/

echo "== tier 2: bench-router smoke (multi-process replicas: rolling restart, kill, hedged straggler, shed)"
go run ./cmd/bench-router -quick -o /tmp/BENCH_router_smoke.json
grep -q '"name": "rolling-restart"' /tmp/BENCH_router_smoke.json
if grep -E '"failed": [1-9]' /tmp/BENCH_router_smoke.json; then
    echo "bench-router smoke leaked failed requests" >&2
    exit 1
fi

echo "== tier 2: request-tracing gate (traceparent round-trip, tail sampler, router->replica tree join under race)"
go test -race ./internal/trace/request/
go test -race -run 'TestTracePropagationE2E' ./internal/router/
go test -race -run 'Trace|Metrics' ./internal/serve/

echo "== tier 2: request-tracing gate (zero-alloc sampled-out fast path)"
go test -run 'TestSampledOutFastPathNoAllocs' -v ./internal/trace/request/ | grep -E '^(--- (PASS|FAIL)|ok|FAIL)'

echo "== tier 2: request-tracing gate (bench-router attribution covers >=95% of wall time, replayed attempt joined)"
if ! grep -q '"attr_coverage_min"' /tmp/BENCH_router_smoke.json; then
    echo "bench-router smoke retained no attribution data" >&2
    exit 1
fi
grep -q '"replay_trace_id"' /tmp/BENCH_router_smoke.json
rm -f /tmp/BENCH_router_smoke.json

echo "all checks passed"
