#!/bin/sh
# check.sh — repository health gates.
#
# Tier 1 (must stay green): build + full test suite.
# Tier 2 (kernel hygiene): vet, formatting, and the race detector over
# the batch-parallel convolution and blocked-GEMM paths.
set -e

cd "$(dirname "$0")/.."

echo "== tier 1: build + tests"
go build ./...
go test ./...

echo "== tier 2: vet"
go vet ./...

echo "== tier 2: gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== tier 2: race detector (parallel conv + GEMM)"
go test -race ./internal/nn/ ./internal/tensor/

echo "all checks passed"
